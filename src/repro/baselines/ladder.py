"""Ladder transform cost model (Table II).

Ladder (Wang et al., OSDI'24) compiles hardware-aware layout
transformations for low-precision operands.  Unlike Marlin it stays on the
GPU, but its transforms are *search-scheduled for static shapes*: a
dynamic KV cache forces a separate transformation kernel chain before the
GEMM — a scatter-heavy permutation pass plus a packing pass — and growth
invalidates the layout, so decode re-transforms the packed region.

The model charges those passes through the normal GPU time model:
scattered global traffic for the permutation, a packing pass, and the
per-kernel launches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AttentionGeometry
from repro.gpu.arch import ArchSpec
from repro.gpu.kernel import KernelLaunch, simulate_kernel
from repro.gpu.trace import AccessPattern, OpTrace


@dataclass
class LadderTransform:
    """Cost of Ladder's layout-transform + pack kernel chain on a KV cache."""

    arch: ArchSpec
    bits: int = 4

    @property
    def name(self) -> str:
        return "Ladder"

    def _transform_launch(self, fp16_bytes: float, packed_bytes: float) -> KernelLaunch:
        trace = OpTrace()
        # Pass 1: gather FP16 data into the transform layout (scattered on
        # both sides — the layout permutation defeats coalescing).
        trace.gmem_read(fp16_bytes, AccessPattern.STRIDED)
        trace.gmem_write(fp16_bytes, AccessPattern.SCATTERED)
        # Pass 2: second permutation level (Ladder transforms are composed
        # of an inter-tile and an intra-tile stage for MMA fragments).
        trace.gmem_read(fp16_bytes, AccessPattern.SCATTERED)
        trace.gmem_write(fp16_bytes, AccessPattern.STRIDED)
        # Pass 3: quantize + pack.
        trace.gmem_read(fp16_bytes)
        trace.gmem_write(packed_bytes)
        trace.alu_ops += (fp16_bytes / 2.0) * 3.0  # index math + pack shifts
        return KernelLaunch(
            name=self.name,
            trace=trace,
            grid_blocks=max(1, int(fp16_bytes // (128 * 1024))),
            warps_per_block=4,
            smem_per_block_bytes=16 * 1024,
            hide_factor=0.5,  # dependent passes
            instruction_path="sm80",
            launches=3,  # permute + permute + pack
        )

    def prefill_latency_ms(self, geom: AttentionGeometry) -> float:
        """Transform + pack an entire prefilled cache."""
        fp16_bytes = float(geom.kv_bytes_fp16)
        packed_bytes = geom.kv_elements * self.bits / 8.0
        launch = self._transform_launch(fp16_bytes, packed_bytes)
        return simulate_kernel(self.arch, launch).time_ms

    def decode_latency_ms(self, geom: AttentionGeometry) -> float:
        """Per-token cost: re-transform the packed region the append touched.

        Ladder's layouts assume static shapes; appending a token forces the
        affected packed stripe (one tile row across the hidden dimension,
        per head) to be rebuilt, plus the kernel-chain launches.
        """
        stripe_tokens = 128.0
        stripe_fp16 = 2.0 * geom.batch * geom.hkv * stripe_tokens * geom.head_dim * 2.0
        packed = stripe_fp16 * self.bits / 16.0
        launch = self._transform_launch(stripe_fp16, packed)
        result = simulate_kernel(self.arch, launch)
        # Dynamic-shape dispatch: Ladder re-selects a schedule per shape.
        dispatch_overhead_ms = 0.45
        return result.time_ms + dispatch_overhead_ms
