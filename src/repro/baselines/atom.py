"""Atom baseline: fused 4-bit attention on CUDA cores, MHA only.

Atom (Zhao et al., 2024) quantizes the KV cache inside the *preceding
linear layer* (so attention pays no quantization cost) and runs a fused
CUDA-core attention over the 4-bit cache.  Like QServe it issues FMA GEMVs
with inline dequantization; unlike QServe it has no GQA support (the paper
notes this explicitly), so constructing it for a GQA geometry raises.

The dequantization uses the naive conversion path — Fig. 15b's micro
analysis shows Atom's high FMA/ALU pressure and zero Tensor-Core use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.common import CUDA_GEMV_EFFICIENCY, int_kv_metadata_bytes
from repro.core.config import AttentionGeometry
from repro.gpu.arch import ArchSpec
from repro.gpu.instructions import dequant_ops, softmax_ops
from repro.gpu.kernel import KernelLaunch, KernelResult, simulate_kernel
from repro.gpu.sm import occupancy
from repro.gpu.trace import AccessPattern, OpTrace
from repro.gpu.warp import memory_hide_factor

_ATOM_WARPS = 4


@dataclass
class Atom:
    """Fused CUDA-core 4-bit decode attention (MHA only)."""

    arch: ArchSpec
    bits: int = 4
    group_size: int = 128

    @property
    def name(self) -> str:
        return "Atom"

    def run_numeric(self, q: np.ndarray, k_hat: np.ndarray, v_hat: np.ndarray) -> np.ndarray:
        from repro.core.softmax import split_kv_attention

        return split_kv_attention(q, k_hat, v_hat, n_splits=1)

    def build_launch(self, geom: AttentionGeometry, paged: bool = True) -> KernelLaunch:
        if geom.gq != 1:
            raise ValueError(
                f"Atom does not support GQA (geometry has gq={geom.gq}); "
                "the paper evaluates it on MHA workloads only"
            )
        d = geom.head_dim
        packed_bytes = geom.kv_elements * self.bits / 8.0
        meta_bytes = int_kv_metadata_bytes(geom, self.group_size)

        trace = OpTrace()
        pattern = AccessPattern.STRIDED if paged else AccessPattern.COALESCED
        trace.gmem_read(packed_bytes + meta_bytes, pattern)
        trace.gmem_read(geom.batch * geom.hq * geom.q_len * d * 2.0)
        trace.gmem_write(geom.batch * geom.hq * geom.q_len * d * 2.0)

        gemv_flops = 2.0 * 2.0 * geom.batch * geom.hq * geom.q_len * geom.seq_len * d
        trace.fma_flops += gemv_flops / CUDA_GEMV_EFFICIENCY

        # Naive casts, issued inside the degraded FMA GEMV stream.
        dq = dequant_ops(geom.kv_elements, self.bits, "cvt").scaled(1.0 / CUDA_GEMV_EFFICIENCY)
        trace.merge(dq)
        trace.merge(
            softmax_ops(
                geom.batch * geom.hq * geom.q_len * geom.seq_len,
                geom.batch * geom.hq * geom.q_len,
            )
        )
        trace.smem_traffic(2.0 * packed_bytes)
        trace.barriers_per_block += 2.0

        grid = geom.batch * geom.hq
        smem = 32 * 1024
        occ = occupancy(self.arch, grid, _ATOM_WARPS, smem)
        hide = memory_hide_factor(occ.blocks_per_sm * _ATOM_WARPS, pipelined=True)
        return KernelLaunch(
            name=self.name,
            trace=trace,
            grid_blocks=grid,
            warps_per_block=_ATOM_WARPS,
            smem_per_block_bytes=smem,
            hide_factor=hide,
            instruction_path="sm80",
            launches=1,
            subtraces={"dequant": dq},
        )

    def decode_result(self, geom: AttentionGeometry, paged: bool = True) -> KernelResult:
        return simulate_kernel(self.arch, self.build_launch(geom, paged=paged))

    def decode_time_ms(self, geom: AttentionGeometry, paged: bool = True) -> float:
        return self.decode_result(geom, paged=paged).time_ms
