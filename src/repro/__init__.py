"""BitDecoding reproduction: low-bit KV-cache decoding with Tensor Cores.

A full-system Python reproduction of *BitDecoding: Unlocking Tensor Cores
for Long-Context LLMs with Low-Bit KV Cache* (HPCA 2026).  The package
pairs bit-exact numerics (quantization, fragment-layout packing,
cooperative softmax) with a trace-driven GPU performance model that
reproduces the paper's evaluation across Ampere/Ada/Hopper/Blackwell.

The public attention API is the :class:`~repro.attn.AttentionBackend`
protocol with three implementations — paged low-bit (serving), contiguous
low-bit (bit-exact reference) and analytical (cost model):

    import numpy as np
    from repro import BitDecodingConfig, ContiguousBitBackend

    backend = ContiguousBitBackend(BitDecodingConfig(bits=4), "a100")
    cache = backend.new_handle(batch=1, hkv=8, head_dim=128)
    k = np.random.randn(1, 8, 1024, 128).astype(np.float16)
    v = np.random.randn(1, 8, 1024, 128).astype(np.float16)
    backend.prefill(None, (k, v), cache)
    q = np.random.randn(1, 1, 32, 128).astype(np.float32)
    out = backend.decode_step(q, cache)

The lower-level ``BitDecoding`` engine / ``BitKVCache`` pair remains
available for kernel-granular work (simulated launches, ablations) from
:mod:`repro.core.attention`; the top-level re-exports are deprecated
shims slated for removal in repro 0.4.
"""

import warnings

from repro.attn import (
    AnalyticalBackend,
    AttentionBackend,
    ContiguousBitBackend,
    KVCacheHandle,
    PagedBitBackend,
    get_backend,
)
from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.quantization import QuantScheme
from repro.gpu import ArchSpec, get_arch

__version__ = "0.2.0"

_DEPRECATED_REEXPORTS = ("BitDecoding", "BitKVCache")


def __getattr__(name: str):
    if name in _DEPRECATED_REEXPORTS:
        warnings.warn(
            f"importing {name} from repro is deprecated and will be removed "
            f"in repro 0.4: use the AttentionBackend API in repro.attn, or "
            f"repro.core.attention.{name} for the internal class itself",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import attention

        return getattr(attention, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "AnalyticalBackend",
    "AttentionBackend",
    "AttentionGeometry",
    "BitDecoding",
    "BitDecodingConfig",
    "BitKVCache",
    "ContiguousBitBackend",
    "KVCacheHandle",
    "PagedBitBackend",
    "QuantScheme",
    "ArchSpec",
    "get_arch",
    "get_backend",
    "__version__",
]
