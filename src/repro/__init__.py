"""BitDecoding reproduction: low-bit KV-cache decoding with Tensor Cores.

A full-system Python reproduction of *BitDecoding: Unlocking Tensor Cores
for Long-Context LLMs with Low-Bit KV Cache* (HPCA 2026).  The package
pairs bit-exact numerics (quantization, fragment-layout packing,
cooperative softmax) with a trace-driven GPU performance model that
reproduces the paper's evaluation across Ampere/Ada/Hopper/Blackwell.

Quickstart::

    import numpy as np
    from repro import BitDecoding, BitDecodingConfig, get_arch

    engine = BitDecoding(BitDecodingConfig(bits=4), get_arch("a100"))
    k = np.random.randn(1, 8, 1024, 128).astype(np.float16)
    v = np.random.randn(1, 8, 1024, 128).astype(np.float16)
    cache = engine.prefill(k, v)
    q = np.random.randn(1, 1, 32, 128).astype(np.float16)
    out = engine.decode(q, cache)
"""

from repro.core import (
    AttentionGeometry,
    BitDecoding,
    BitDecodingConfig,
    BitKVCache,
    QuantScheme,
)
from repro.gpu import ArchSpec, get_arch

__version__ = "0.1.0"

__all__ = [
    "AttentionGeometry",
    "BitDecoding",
    "BitDecodingConfig",
    "BitKVCache",
    "QuantScheme",
    "ArchSpec",
    "get_arch",
    "__version__",
]
