"""BitDecoding reproduction: low-bit KV-cache decoding with Tensor Cores.

A full-system Python reproduction of *BitDecoding: Unlocking Tensor Cores
for Long-Context LLMs with Low-Bit KV Cache* (HPCA 2026).  The package
pairs bit-exact numerics (quantization, fragment-layout packing,
cooperative softmax) with a trace-driven GPU performance model that
reproduces the paper's evaluation across Ampere/Ada/Hopper/Blackwell.

The public attention API is the :class:`~repro.attn.AttentionBackend`
protocol with three implementations — paged low-bit (serving), contiguous
low-bit (bit-exact reference) and analytical (cost model):

    import numpy as np
    from repro import BitDecodingConfig, ContiguousBitBackend

    backend = ContiguousBitBackend(BitDecodingConfig(bits=4), "a100")
    cache = backend.new_handle(batch=1, hkv=8, head_dim=128)
    k = np.random.randn(1, 8, 1024, 128).astype(np.float16)
    v = np.random.randn(1, 8, 1024, 128).astype(np.float16)
    backend.prefill(None, (k, v), cache)
    q = np.random.randn(1, 1, 32, 128).astype(np.float32)
    out = backend.decode_step(q, cache)

The lower-level ``BitDecoding`` engine / ``BitKVCache`` pair remains
available for kernel-granular work (simulated launches, ablations) from
:mod:`repro.core.attention`; the 0.2-era top-level re-exports were
removed in 0.4 (see the README migration table).
"""

from repro.attn import (
    AnalyticalBackend,
    AttentionBackend,
    ContiguousBitBackend,
    KVCacheHandle,
    PagedBitBackend,
    get_backend,
)
from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.quantization import QuantScheme
from repro.gpu import ArchSpec, get_arch

__version__ = "0.4.0"

__all__ = [
    "AnalyticalBackend",
    "AttentionBackend",
    "AttentionGeometry",
    "BitDecodingConfig",
    "ContiguousBitBackend",
    "KVCacheHandle",
    "PagedBitBackend",
    "QuantScheme",
    "ArchSpec",
    "get_arch",
    "get_backend",
    "__version__",
]
