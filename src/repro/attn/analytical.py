"""The analytical backend: the cost model as just another implementation.

Before the protocol existed, the serving engine called the latency
functions in :mod:`repro.model.inference` directly and could never run a
real token.  Demoting that cost model to one ``AttentionBackend`` among
three makes the engine's contract explicit: every backend prices steps;
numeric backends additionally execute them.  This one prices steps for
*any* duck-typed attention system (BitDecoding, FlashDecoding, KIVI,
QServe, ...) and raises loudly if asked for tokens.
"""

from __future__ import annotations

from typing import NoReturn, Optional, Tuple

import numpy as np

from repro.attn.protocol import AttentionBackend, KVCacheHandle, register_backend


@register_backend
class AnalyticalBackend(AttentionBackend):
    """Step pricing over an :class:`~repro.model.inference.AttentionSystem`."""

    name = "analytical"
    executes_tokens = False

    def __init__(self, attention):
        if not hasattr(attention, "decode_time_ms"):
            raise TypeError(
                "AnalyticalBackend needs an attention system exposing "
                "decode_time_ms(geom)"
            )
        self._attention = attention

    @property
    def attention_system(self):
        return self._attention

    def _no_tokens(self) -> NoReturn:
        raise NotImplementedError(
            "the analytical backend prices scheduler steps; it does not "
            "execute tokens — use the paged-bit or contiguous-bit backend"
        )

    def new_handle(self, batch: int, hkv: int, head_dim: int) -> KVCacheHandle:
        self._no_tokens()

    def prefill(
        self,
        q: Optional[np.ndarray],
        kv: Tuple[np.ndarray, np.ndarray],
        block_table: KVCacheHandle,
    ) -> Optional[np.ndarray]:
        self._no_tokens()

    def append_kv(self, kv: Tuple[np.ndarray, np.ndarray], block_table: KVCacheHandle) -> None:
        self._no_tokens()

    def decode_step(self, q: np.ndarray, block_table: KVCacheHandle) -> np.ndarray:
        self._no_tokens()
