"""Real token execution behind the serving engine's scheduler.

The :class:`ModelRunner` closes the loop the reproduction was missing:
the continuous-batching engine's admission / chunked-prefill / preemption
decisions act on a :class:`~repro.pages.page_table.PageTable`, and the
runner's per-layer :class:`~repro.attn.paged.PagedBitKVCache` pools are
indexed by *those same page ids* — one logical page is one packed block
of one sequence across every layer.  When the scheduler reserves pages,
the runner fills them with real packed words; when it preempts, the
freed pages really do contain a victim's quantized KV.

Requests carry lengths, not text, so the runner synthesizes a
deterministic input program per request: prompt embeddings seeded by the
request id, then each decode step feeds the previous step's hidden state
back in.  Preemption keeps the program (prompt + consumed decode inputs)
and drops the cache; re-admission re-prefills the recorded context —
recompute-style recovery over the real numeric path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attn.paged import PagedBatchHandle, PagedBitBackend
from repro.model.transformer import CacheSession, TinyTransformer
from repro.pages.page_table import PageTable
from repro.pages.tiers import TieredPageStore


@dataclass
class _SequenceProgram:
    """One request's deterministic inputs and live decode state."""

    inputs: List[np.ndarray]
    session: Optional[CacheSession] = None
    written: int = 0
    pending: Optional[np.ndarray] = None
    handles: List[PagedBatchHandle] = field(default_factory=list)
    #: Swapped-out state: (seq_len, per-layer FP16 residual row stash).
    swap_state: Optional[Tuple[int, List[Tuple[np.ndarray, np.ndarray]]]] = None


class ModelRunner:
    """TinyTransformer + paged low-bit caches over the engine's page table."""

    def __init__(
        self,
        model,
        backend: PagedBitBackend,
        table: PageTable,
        n_slots: int,
        seed: int = 0,
        tiers: Optional[TieredPageStore] = None,
    ):
        if not backend.executes_tokens:
            raise ValueError(f"backend {backend.name!r} cannot execute tokens")
        if not isinstance(backend, PagedBitBackend):
            raise TypeError(
                "real execution shares the scheduler's page table, which "
                "only the paged-bit backend supports"
            )
        nr = backend.config.residual_block_size
        if table.page_size != nr:
            raise ValueError(
                f"execute mode needs page_size == N_r ({nr}) so one scheduler "
                f"page is one packed block; got page_size {table.page_size}"
            )
        self.backend = backend
        self.model = model
        self.tt = TinyTransformer(
            n_layers=model.n_layers,
            hq=model.hq,
            hkv=model.hkv,
            head_dim=model.head_dim,
            hidden=model.hidden,
            intermediate=model.intermediate,
            backend=backend,
            seed=seed,
        )
        self.stores = [
            backend.make_store(model.hkv, model.head_dim, n_slots=n_slots, table=table, tiers=tiers)
            for _ in range(model.n_layers)
        ]
        self.seed = seed
        self.executed_tokens = 0
        self._programs: Dict[int, _SequenceProgram] = {}
        #: Per-request decode hidden states, in generation order — the
        #: bit-exactness witness the prefix-sharing comparisons diff.
        self.decoded: Dict[int, List[np.ndarray]] = {}

    # ------------------------------------------------------------- lifecycle

    def _prompt_inputs(self, req) -> List[np.ndarray]:
        """Synthesize a request's prompt rows deterministically.

        The shared-prefix rows are seeded by the request's *prefix group*,
        not its id, so every request of the group really does feed the
        model identical leading tokens — the content the prefix cache is
        entitled to deduplicate.  The private remainder stays seeded by
        the request id (and for ``shared_prefix_len == 0`` the stream is
        exactly the pre-prefix-cache one).
        """
        req_id, prompt_len = req.req_id, req.prompt_len
        shared = req.shared_prefix_len
        parts = []
        if shared:
            group_rng = np.random.default_rng([self.seed, 1_000_003, req.prefix_group])
            parts.append(group_rng.standard_normal((shared, self.model.hidden)))
        if shared == 0:
            rng = np.random.default_rng([self.seed, req_id])
            parts.append(rng.standard_normal((prompt_len, self.model.hidden)))
        elif prompt_len > shared:
            rng = np.random.default_rng([self.seed, req_id])
            parts.append(rng.standard_normal((prompt_len - shared, self.model.hidden)))
        rows = (np.concatenate(parts, axis=0) * 0.25).astype(np.float32)
        return list(rows)

    def on_admit(self, lc, copy_from: Optional[List[int]] = None) -> None:
        """Bind a just-admitted sequence to pool slots and a fresh session.

        Re-admission after preemption reuses the recorded input program,
        so the recomputed context is exactly the one the scheduler's
        ``prefill_target`` promises (prompt plus generated-so-far).

        ``lc.cached_tokens`` leading tokens arrived via prefix-cache pages
        already mapped into the sequence's block table: the handles and
        the session cursor start there, so the next prefill chunk attends
        the shared pages' packed words as-is — bit-exact reuse with no
        recompute.  ``copy_from`` (the engine's ``prefix_share=False``
        diagnostic) instead clones those pages' content into the
        sequence's private pages in every layer store.
        """
        req = lc.request
        prog = self._programs.get(req.req_id)
        if prog is None:
            prog = _SequenceProgram(inputs=self._prompt_inputs(req))
            self._programs[req.req_id] = prog
        cached = lc.cached_tokens
        prog.handles = [
            PagedBatchHandle(s, [s.adopt(lc.seq_id, prefix_tokens=cached)])
            for s in self.stores
        ]
        if copy_from:
            dst = self.stores[0].table.sequences[lc.seq_id].pages[: len(copy_from)]
            for store in self.stores:
                store.copy_pages(copy_from, dst)
        prog.session = self.tt.new_session(prog.handles)
        prog.session.positions = cached
        prog.written = cached
        prog.pending = None

    def prefill(self, lc, n_tokens: int) -> None:
        """Run one prefill chunk through the model into reserved pages.

        Replay (re-admission after a preemption or a heal) is *bit-exact*:
        prompt rows go through ``prefill_chunk`` with the same chunk
        boundaries the original admission used, and consumed decode inputs
        beyond the prompt are re-decoded one token at a time through the
        quantized cache — the exact call sequence that produced them, so
        a recovered sequence's remaining decode outputs match the
        uninterrupted run bit for bit.
        """
        prog = self._programs[lc.request.req_id]
        end = prog.written + n_tokens
        prompt_len = lc.request.prompt_len
        last = None
        if prog.written < prompt_len:
            hi = min(end, prompt_len)
            x = np.stack(prog.inputs[prog.written : hi])[None]
            h = self.tt.prefill_chunk(x, prog.session)
            prog.written = hi
            last = h[0, -1]
        while prog.written < end:
            x = prog.inputs[prog.written]
            h = self.tt.decode_step(x[None], prog.session)
            prog.written += 1
            last = h[0]
        if prog.written >= lc.prefill_target:
            prog.pending = last

    def decode(self, lc) -> None:
        """Advance a decode-ready sequence by one real token."""
        prog = self._programs[lc.request.req_id]
        x = prog.pending
        prog.inputs.append(x)  # consumed input: part of the recompute context
        h = self.tt.decode_step(x[None], prog.session)
        prog.pending = h[0]
        self.decoded.setdefault(lc.request.req_id, []).append(np.array(h[0], np.float32))
        self.executed_tokens += 1

    def decode_batch(self, lcs) -> None:
        """Advance every decode-ready sequence by one token, grouped.

        Sequences at the same position run as ONE batched transformer
        step: they share the memoized RoPE table, the projections are
        already leading-dim-batched matmuls (bit-identical per row to a
        batch-1 step), and the per-layer group handle lets the paged
        backend batch the cache writes and gather equal-shape caches into
        single grouped kernel calls.  Output scatter mirrors the
        sequential :meth:`decode` loop exactly, so executed streams are
        bit-identical to per-sequence decode.
        """
        groups: Dict[int, list] = {}
        for lc in lcs:
            prog = self._programs[lc.request.req_id]
            groups.setdefault(prog.session.positions, []).append((lc, prog))
        for pos, members in groups.items():
            if len(members) == 1:
                self.decode(members[0][0])
                continue
            xs = np.stack([prog.pending for _, prog in members])
            for _, prog in members:
                prog.inputs.append(prog.pending)
            gsession = CacheSession(
                caches=[
                    PagedBatchHandle(
                        self.stores[i], [prog.handles[i].seqs[0] for _, prog in members]
                    )
                    for i in range(len(self.stores))
                ],
                positions=pos,
            )
            h = self.tt.decode_step(xs, gsession)
            for g, (lc, prog) in enumerate(members):
                prog.pending = h[g]
                prog.session.positions += 1
                self.decoded.setdefault(lc.request.req_id, []).append(np.array(h[g], np.float32))
                self.executed_tokens += 1

    def _free(self, prog: _SequenceProgram) -> None:
        for handle in prog.handles:
            for seqh in handle.seqs:
                handle.store.free_slot(seqh)
        prog.handles = []
        prog.session = None
        prog.written = 0
        prog.pending = None

    def on_preempt(self, lc) -> None:
        """Drop the cache binding; the scheduler frees the pages itself.

        Works on swapped victims too (a healed sequence can be preempted
        straight out of the swapped set): the stashed residual rows are
        discarded along with the handles, since recompute-style replay
        rebuilds everything from the input program.
        """
        prog = self._programs[lc.request.req_id]
        self._free(prog)
        prog.swap_state = None

    def on_abort(self, lc) -> None:
        """A request left the system without finishing (timed out, shed
        after admission, or failed): release whatever it still binds."""
        prog = self._programs.pop(lc.request.req_id, None)
        if prog is not None:
            self._free(prog)
            prog.swap_state = None

    def on_swap_out(self, lc) -> None:
        """Park a sequence whose pages survive off-device (swap preemption).

        The scheduler keeps the page-table sequence mapped and the tier
        store demotes its packed pages; all the runner must save is what
        lives outside the pages — each layer's partial FP16 residual rows
        — plus the decode cursor.  The session object (positions, pending
        input) stays on the program, unbound from any cache handle.
        """
        prog = self._programs[lc.request.req_id]
        seqh0 = prog.handles[0].seqs[0]
        seq_len, n_res = seqh0.seq_len, seqh0.res_len
        stash = []
        for handle in prog.handles:
            seqh = handle.seqs[0]
            store = handle.store
            stash.append(
                (
                    np.array(store.res_k[seqh.slot][:, :n_res]),
                    np.array(store.res_v[seqh.slot][:, :n_res]),
                )
            )
            store.free_slot(seqh)
        prog.swap_state = (seq_len, stash)
        prog.handles = []
        prog.session.caches = []

    def on_swap_in(self, lc) -> None:
        """Rebind a swapped sequence: same pages, restored residual rows.

        Packed pages were never unmapped, so the handles pick up exactly
        the words that were flushed before the swap — the bit-identity
        the swap parity suite asserts.
        """
        prog = self._programs[lc.request.req_id]
        seq_len, stash = prog.swap_state
        prog.handles = [
            PagedBatchHandle(store, [store.reattach(lc.seq_id, seq_len, rk, rv)])
            for store, (rk, rv) in zip(self.stores, stash)
        ]
        prog.session.caches = list(prog.handles)
        prog.swap_state = None

    def on_finish(self, lc) -> None:
        self._free(self._programs.pop(lc.request.req_id))
