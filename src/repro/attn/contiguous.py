"""The contiguous struct-of-arrays backend: today's ``BitKVCache`` path.

This is the bit-exact reference implementation of the protocol — the
same batched SoA cache and fused kernels the numerics test suite pins,
wrapped behind :class:`~repro.attn.protocol.AttentionBackend` so the
transformer and the parity tests can swap it against the paged backend.
All sequences in a handle share a length (the paper's padded "Batches"
setting); ragged serving belongs to the paged backend.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.attn.protocol import (
    AttentionBackend,
    KVCacheHandle,
    coerce_engine,
    register_backend,
)
from repro.attn.reference import chunked_causal_attention
from repro.core.attention import BitDecoding, BitKVCache
from repro.core.config import BitDecodingConfig
from repro.gpu.arch import ArchSpec


class ContiguousHandle(KVCacheHandle):
    """One layer's :class:`BitKVCache`, created lazily at first prefill."""

    def __init__(self, batch: int, hkv: int, head_dim: int, config: BitDecodingConfig):
        self.batch = batch
        self.hkv = hkv
        self.head_dim = head_dim
        self.config = config
        self.cache: Optional[BitKVCache] = None

    @property
    def seq_len(self) -> int:
        return 0 if self.cache is None else self.cache.seq_len


@register_backend
class ContiguousBitBackend(AttentionBackend):
    """Quantized decode over the contiguous two-part cache (the reference)."""

    name = "contiguous-bit"

    def __init__(
        self,
        engine: Union[BitDecoding, BitDecodingConfig, None] = None,
        arch: Union[ArchSpec, str] = "a100",
    ):
        self.engine = coerce_engine(engine, arch)
        self.config = self.engine.config

    @property
    def attention_system(self) -> BitDecoding:
        return self.engine

    # ------------------------------------------------------------- numerics

    def new_handle(self, batch: int, hkv: int, head_dim: int) -> ContiguousHandle:
        return ContiguousHandle(batch, hkv, head_dim, self.config)

    def prefill(
        self,
        q: Optional[np.ndarray],
        kv: Tuple[np.ndarray, np.ndarray],
        block_table: KVCacheHandle,
    ) -> Optional[np.ndarray]:
        bt: ContiguousHandle = block_table
        if bt.cache is not None:
            raise NotImplementedError(
                "the contiguous cache packs whole prompts; chunked prefill "
                "continuation needs the paged-bit backend"
            )
        k, v = kv
        bt.cache = BitKVCache.from_prefill(
            np.asarray(k, np.float16), np.asarray(v, np.float16), self.config
        )
        if q is None:
            return None
        return chunked_causal_attention(q, None, None, k, v)

    def append_kv(self, kv: Tuple[np.ndarray, np.ndarray], block_table: KVCacheHandle) -> None:
        bt: ContiguousHandle = block_table
        if bt.cache is None:
            bt.cache = BitKVCache(bt.batch, bt.hkv, bt.head_dim, self.config)
        bt.cache.append_token(*kv)

    def decode_step(self, q: np.ndarray, block_table: KVCacheHandle) -> np.ndarray:
        bt: ContiguousHandle = block_table
        if bt.cache is None:
            raise ValueError("decode on an empty cache handle")
        return self.engine.decode(q, bt.cache)
