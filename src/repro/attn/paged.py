"""Paged low-bit KV cache: packed words in a shared page pool.

This is the serving-side cache the paper's system implies but the
reproduction never had: the *same* struct-of-arrays packed-word /
``half2``-metadata tensors the contiguous :class:`BitKVCache` stores,
re-homed into a fixed pool of physical pages indexed by per-sequence
block tables.  One page holds one Tensor-Core-aligned packed block
(``N_r`` tokens across every KV head of one sequence), so:

- a page is exactly one flush's output — pages are written whole, never
  partially, which is what makes recycled pages safe (a reused page is
  fully overwritten before any decode can read it);
- the page *id* space is owned by :class:`~repro.pages.page_table.PageTable`
  over :class:`~repro.pages.allocator.PageAllocator` — the same machinery
  the serving engine schedules with, so admission, chunked prefill and
  preemption manipulate the very pages the numerics read, and preempting
  a sequence frees *packed* pages, not fp16 rows;
- the newest ``< N_r`` tokens live in a per-sequence FP16 residual slot
  (the paper's two-part cache), reserved per batch slot exactly as
  :func:`repro.model.memory.page_pool_size` accounts it.

Storage is bit-identical to the contiguous cache: blocks are produced by
the same :func:`~repro.core.residual_kernel.flush_blocks` and read back
through the same :class:`~repro.core.residual_kernel.PackedBlockBatch`
dequant, so a paged decode and a contiguous decode of the same tokens
agree exactly under ``numerics_mode="exact_tiled"`` (the parity suite in
``tests/attn`` enforces it).
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.attn.protocol import (
    AttentionBackend,
    KVCacheHandle,
    coerce_engine,
    register_backend,
)
from repro.attn.reference import chunked_causal_attention
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.core.quantization import QuantParams
from repro.core.residual_kernel import PackedBlockBatch, flush_blocks
from repro.gpu.arch import ArchSpec
from repro.pages.allocator import OutOfPagesError, PageAllocator
from repro.pages.page_table import PageTable
from repro.pages.tiers import TieredPageStore, TierObserver


class PagedSeqHandle(KVCacheHandle):
    """One sequence's block table into a :class:`PagedBitKVCache`.

    Duck-types the cache interface :meth:`BitDecoding.decode` reads
    (``config`` / ``batch`` / ``hkv`` / ``head_dim`` / ``dequant_kv`` /
    ``residual_kv``), so decode over a paged sequence runs through the
    exact same kernel code path as the contiguous cache.
    """

    seq_len = 0
    batch = 1

    def __init__(self, store: "PagedBitKVCache", seq_id: int, slot: int):
        self.store = store
        self.seq_id = seq_id
        self.slot = slot
        self.seq_len = 0
        self._dequant_memo: Optional[Tuple[int, Tuple[np.ndarray, np.ndarray]]] = None

    @property
    def config(self) -> BitDecodingConfig:
        return self.store.config

    @property
    def hkv(self) -> int:
        return self.store.hkv

    @property
    def head_dim(self) -> int:
        return self.store.head_dim

    @property
    def n_blocks(self) -> int:
        """Complete packed blocks (= pages actually holding packed words)."""
        return self.seq_len // self.store.block_tokens

    @property
    def res_len(self) -> int:
        """Tokens currently in this sequence's FP16 residual slot."""
        return self.seq_len % self.store.block_tokens

    @property
    def block_ids(self) -> List[int]:
        """Physical page ids of the packed blocks, in logical order."""
        return self.store.table.sequences[self.seq_id].pages[: self.n_blocks]

    def dequant_kv(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.store.dequant_seq(self)

    def residual_kv(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.store.residual_view(self)


class PagedBatchHandle(KVCacheHandle):
    """A lock-step batch of paged sequences over one shared store."""

    def __init__(self, store: "PagedBitKVCache", seqs: List[PagedSeqHandle]):
        self.store = store
        self.seqs = seqs

    @property
    def seq_len(self) -> int:
        return self.seqs[0].seq_len if self.seqs else 0


class PagedBitKVCache(TierObserver):
    """Page-pool storage for one layer's packed low-bit K/V.

    The pool arrays mirror :class:`PackedBlockBatch` with the block axis
    promoted to a *physical page* axis: ``k_words``/``v_words`` are
    ``[n_pages, hkv, ...fragment words...]`` and the quantization
    metadata ``[n_pages, hkv, ...group stats...]``.  FP16 residual slots
    are ``[n_slots, hkv, N_r, d]`` pairs handed out per resident
    sequence by their own :class:`PageAllocator` (the serving memory
    model reserves residual buffers per batch slot, not per page).

    Pass ``table`` to share an externally scheduled
    :class:`~repro.pages.page_table.PageTable` (the serving engine's):
    page reservation then belongs to the scheduler and
    :meth:`write_rows` only fills what was reserved.  Without ``table``
    the store owns its table and reserves pages as it writes.

    Pass ``tiers`` to spread the pool over a
    :class:`~repro.pages.tiers.TieredPageStore`: the pool axis then
    spans *frames* (device + host + disk), logical page ids map through
    the store's bijection, and this cache registers as a tier observer
    so migrations move its packed words and metadata bit-exactly.  Reads
    of a non-resident page take the measured fallback: the store faults
    it into the device tier synchronously and records the stall.
    """

    def __init__(
        self,
        config: BitDecodingConfig,
        hkv: int,
        head_dim: int,
        n_pages: int = 256,
        n_slots: int = 16,
        table: Optional[PageTable] = None,
        tiers: Optional[TieredPageStore] = None,
    ):
        if config.version == "fp4":
            raise NotImplementedError(
                "the paged pool stores integer packed words; the FP4 "
                "micro-scaling path has no paged backend yet"
            )
        if min(hkv, head_dim, n_slots) <= 0:
            raise ValueError("hkv, head_dim and n_slots must be positive")
        self.config = config
        self.hkv = hkv
        self.head_dim = head_dim
        nr = config.residual_block_size
        self.block_tokens = nr
        if table is None:
            table = PageTable(PageAllocator(n_pages), page_size=nr)
            self.shared_table = False
        else:
            if table.page_size != nr:
                raise ValueError(
                    f"shared page table's page_size ({table.page_size}) must equal "
                    f"the residual block size N_r ({nr}): one page holds one "
                    "packed block"
                )
            self.shared_table = True
        self.table = table
        n_pages = table.allocator.n_pages
        if tiers is not None:
            if tiers.allocator is not table.allocator:
                raise ValueError("tiers must be built over the page table's allocator")
            tiers.add_observer(self)
        self.tiers = tiers

        # One probe flush fixes every pool shape/dtype: the fragment-word
        # tensor and group-stat layouts depend only on (N_r, d, config),
        # never on batch/hkv/block count.
        zeros = np.zeros((1, 1, 1, nr, head_dim), np.float16)
        probe = flush_blocks(zeros, zeros, config)
        self._layout_name = probe.layout_name
        self._k_axis = probe.k_params.axis
        self._k_group = probe.k_params.group_size
        self._v_axis = probe.v_params.axis
        self._v_group = probe.v_params.group_size
        self.k_words = np.zeros((n_pages, hkv) + probe.k_words.shape[3:], probe.k_words.dtype)
        self.v_words = np.zeros((n_pages, hkv) + probe.v_words.shape[3:], probe.v_words.dtype)
        self.k_scale = np.zeros((n_pages, hkv) + probe.k_params.scale.shape[3:], np.float32)
        self.k_zero = np.zeros_like(self.k_scale)
        self.v_scale = np.zeros((n_pages, hkv) + probe.v_params.scale.shape[3:], np.float32)
        self.v_zero = np.zeros_like(self.v_scale)
        self.slots = PageAllocator(n_slots)
        self.res_k = np.zeros((n_slots, hkv, nr, head_dim), np.float16)
        self.res_v = np.zeros((n_slots, hkv, nr, head_dim), np.float16)

    def _pools(self) -> Tuple[np.ndarray, ...]:
        return (self.k_words, self.v_words, self.k_scale, self.k_zero, self.v_scale, self.v_zero)

    def _frames(self, pages) -> np.ndarray:
        """Physical pool indices for logical page ids (identity untiered)."""
        if self.tiers is None:
            return np.asarray(pages)
        return self.tiers.frames_of(list(pages))

    # --------------------------------------------------- TierObserver hooks

    def copy_frame(self, src: int, dst: int) -> None:
        for pool in self._pools():
            pool[dst] = pool[src]

    def exchange_frames(self, a: int, b: int) -> None:
        for pool in self._pools():
            tmp = pool[a].copy()
            pool[a] = pool[b]
            pool[b] = tmp

    def frame_checksum(self, frame: int) -> int:
        """CRC32 over every pool's bytes for one frame (packed words and
        quantization metadata alike — rot in a scale is as fatal as rot in
        a word)."""
        digest = 0
        for pool in self._pools():
            digest = zlib.crc32(np.ascontiguousarray(pool[frame]).tobytes(), digest)
        return digest & 0xFFFFFFFF

    def corrupt_frame(self, frame: int, salt: int) -> None:
        """Deterministically flip bits in one frame's packed K words.

        The mask is derived from ``salt`` and guaranteed nonzero, so the
        damage always changes the frame's checksum — injection can never
        silently miss.
        """
        flat = self.k_words[frame].reshape(-1)
        idx = salt % flat.size
        # (salt | 1) keeps the low bit set, so the mask is never zero.
        flat[idx] ^= np.asarray((salt | 1) & np.iinfo(flat.dtype).max, dtype=flat.dtype)

    # ---------------------------------------------------------- sequences

    def adopt(self, seq_id: int, prefix_tokens: int = 0) -> PagedSeqHandle:
        """Bind an externally registered page-table sequence to the pool.

        ``prefix_tokens`` marks that many leading tokens as already packed
        into the sequence's pages (a prefix-cache hit): the handle starts
        at that length and decodes read the shared pages' packed words
        as-is — bit-exact reuse, no recompute.  Hits are page-granular, so
        the count must be block-aligned (the residual slot starts empty).
        """
        if prefix_tokens % self.block_tokens:
            raise ValueError(
                f"prefix_tokens ({prefix_tokens}) must be a multiple of the "
                f"packed block size N_r ({self.block_tokens}): prefix-cache "
                "hits are whole flushed pages"
            )
        if prefix_tokens > self.table.sequences[seq_id].length:
            raise ValueError("prefix_tokens exceeds the sequence's reserved length")
        try:
            slot = self.slots.allocate()
        except OutOfPagesError as err:
            raise OutOfPagesError(
                f"all {self.slots.n_pages} residual slots in use; release "
                "finished sequences or construct the pool with more n_slots"
            ) from err
        handle = PagedSeqHandle(self, seq_id, slot)
        handle.seq_len = prefix_tokens
        return handle

    def reattach(
        self,
        seq_id: int,
        seq_len: int,
        res_k: Optional[np.ndarray] = None,
        res_v: Optional[np.ndarray] = None,
    ) -> PagedSeqHandle:
        """Rebind a sequence whose pages survived while its handle did not.

        Swap-in path: the scheduler kept the page-table sequence (and its
        packed pages, wherever the tier store parked them) across a
        preemption, but the residual slot was returned.  ``seq_len`` may
        sit mid-block, so unlike :meth:`adopt` this also restores the
        partial FP16 residual rows (``[hkv, res_len, d]``) stashed at
        swap-out.
        """
        if seq_len > self.table.sequences[seq_id].length:
            raise ValueError("seq_len exceeds the sequence's reserved length")
        n_res = seq_len % self.block_tokens
        if n_res and (res_k is None or res_v is None):
            raise ValueError(
                f"seq_len ({seq_len}) implies {n_res} residual tokens; "
                "their FP16 rows must be supplied to reattach"
            )
        try:
            slot = self.slots.allocate()
        except OutOfPagesError as err:
            raise OutOfPagesError(
                f"all {self.slots.n_pages} residual slots in use; release "
                "finished sequences or construct the pool with more n_slots"
            ) from err
        handle = PagedSeqHandle(self, seq_id, slot)
        handle.seq_len = seq_len
        if n_res:
            self.res_k[slot][:, :n_res] = np.asarray(res_k, np.float16)
            self.res_v[slot][:, :n_res] = np.asarray(res_v, np.float16)
        return handle

    def add_sequence(self) -> PagedSeqHandle:
        """Register a fresh empty sequence (store-owned table mode)."""
        return self.adopt(self.table.add_sequence(0))

    def fork(self, handle: PagedSeqHandle) -> PagedSeqHandle:
        """Clone a sequence copy-on-write: share every page, copy the slot.

        The child maps the parent's physical pages — including a trailing
        reserved-but-unflushed one — and gets its own residual slot seeded
        with the parent's FP16 rows.  Packed pages stay shared until one
        side's flush lands on a shared page, at which point
        :meth:`_store_blocks` clones the mapping before writing (pages are
        written whole, so the "copy" is just a fresh page id).
        """
        child_seq = self.table.fork_sequence(handle.seq_id)
        child = self.adopt(child_seq)
        child.seq_len = handle.seq_len
        self.res_k[child.slot] = self.res_k[handle.slot]
        self.res_v[child.slot] = self.res_v[handle.slot]
        return child

    def free_slot(self, handle: PagedSeqHandle) -> None:
        """Return the residual slot; the scheduler owns the pages."""
        self.slots.release(handle.slot)
        handle._dequant_memo = None

    def release(self, handle: PagedSeqHandle) -> None:
        """Free the sequence's pages and residual slot."""
        self.table.release_sequence(handle.seq_id)
        self.free_slot(handle)

    def reserve(self, handle: PagedSeqHandle, n_tokens: int) -> None:
        """Reserve pages for ``n_tokens`` more tokens (store-owned mode).

        With a shared (scheduler-owned) table this is a no-op: the engine
        reserved the pages when it admitted/extended the sequence, and
        :meth:`write_rows` enforces that the reservation exists.
        """
        if not self.shared_table:
            self.table.extend_sequence(handle.seq_id, n_tokens)

    # -------------------------------------------------------------- writes

    def write_rows(self, handle: PagedSeqHandle, k_rows: np.ndarray, v_rows: np.ndarray) -> None:
        """Append ``n`` tokens' K/V (``[hkv, n, d]``) to a sequence.

        Rows stream through the residual slot; every time the slot fills
        to ``N_r`` the completed block is quantized+packed by the same
        :func:`flush_blocks` the contiguous cache uses and written whole
        into the sequence's next physical page.  Runs of complete blocks
        (bulk prefill) skip the slot and flush straight from the input in
        one batched call — bit-identical, per-block independence.
        """
        k_rows = np.asarray(k_rows, np.float16)
        v_rows = np.asarray(v_rows, np.float16)
        if k_rows.shape != v_rows.shape or k_rows.ndim != 3:
            raise ValueError("K and V rows must share an [hkv, n, d] shape")
        n = k_rows.shape[1]
        seq = self.table.sequences[handle.seq_id]
        if handle.seq_len + n > seq.length:
            raise ValueError(
                f"write of {n} tokens at {handle.seq_len} exceeds the "
                f"sequence's reserved length ({seq.length}); reserve pages first"
            )
        nr = self.block_tokens
        res_k = self.res_k[handle.slot]
        res_v = self.res_v[handle.slot]
        written = 0
        while written < n:
            fill = handle.seq_len % nr
            remaining = n - written
            if fill == 0 and remaining >= nr:
                nb = remaining // nr
                shape = (self.hkv, nb, nr, self.head_dim)
                flushed = flush_blocks(
                    k_rows[:, written : written + nb * nr].reshape(shape)[None],
                    v_rows[:, written : written + nb * nr].reshape(shape)[None],
                    self.config,
                )
                first = handle.seq_len // nr
                self._store_blocks(handle, first, nb, flushed)
                handle.seq_len += nb * nr
                written += nb * nr
                continue
            take = min(nr - fill, remaining)
            res_k[:, fill : fill + take] = k_rows[:, written : written + take]
            res_v[:, fill : fill + take] = v_rows[:, written : written + take]
            handle.seq_len += take
            written += take
            if handle.seq_len % nr == 0:
                flushed = flush_blocks(res_k[None, :, None], res_v[None, :, None], self.config)
                self._store_blocks(handle, handle.seq_len // nr - 1, 1, flushed)

    def _store_blocks(
        self, handle: PagedSeqHandle, first_block: int, nb: int, flushed: PackedBlockBatch
    ) -> None:
        """Write a flush's blocks into physical pages, whole pages only.

        Copy-on-write guard: a target page mapped by more than one
        sequence (a forked clone) is swapped for a fresh exclusive page
        before the write — and since pages are only ever written whole,
        no content copy is needed, just the remap.
        """
        pages = [
            self.table.ensure_exclusive(handle.seq_id, first_block + i)[0] for i in range(nb)
        ]
        idx = self._frames(pages)
        self.k_words[idx] = flushed.k_words[0].swapaxes(0, 1)
        self.v_words[idx] = flushed.v_words[0].swapaxes(0, 1)
        self.k_scale[idx] = flushed.k_params.scale[0].swapaxes(0, 1)
        self.k_zero[idx] = flushed.k_params.zero[0].swapaxes(0, 1)
        self.v_scale[idx] = flushed.v_params.scale[0].swapaxes(0, 1)
        self.v_zero[idx] = flushed.v_params.zero[0].swapaxes(0, 1)

    def copy_pages(self, src: List[int], dst: List[int]) -> None:
        """Clone packed words + metadata between physical pages.

        The engine's ``prefix_share=False`` diagnostic mode uses this to
        materialize prefix-cache hits as private copies instead of shared
        mappings — the numerics must be bit-identical either way, which is
        exactly what the sharing acceptance test pins down.
        """
        if len(src) != len(dst):
            raise ValueError("src and dst page lists must have equal length")
        if not src:
            return
        s, d = self._frames(src), self._frames(dst)
        self.k_words[d] = self.k_words[s]
        self.v_words[d] = self.v_words[s]
        self.k_scale[d] = self.k_scale[s]
        self.k_zero[d] = self.k_zero[s]
        self.v_scale[d] = self.v_scale[s]
        self.v_zero[d] = self.v_zero[s]

    # --------------------------------------------------------------- reads

    def _dequant_pages(self, pages: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Gather pages into a :class:`PackedBlockBatch` and dequantize.

        Under a tier store this is the measured fallback: any page still
        off-device faults in synchronously (stall recorded) before the
        gather, so reads are always device reads.
        """
        if self.tiers is not None:
            self.tiers.fault_in([int(p) for p in pages])
        frames = self._frames(pages)

        def gather(pool: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(pool[frames].swapaxes(0, 1))[None]

        batch = PackedBlockBatch(
            length=self.block_tokens,
            head_dim=self.head_dim,
            bits=self.config.bits,
            word_bits=self.config.word_bits,
            layout_name=self._layout_name,
            k_words=gather(self.k_words),
            v_words=gather(self.v_words),
            k_params=QuantParams(
                scale=gather(self.k_scale),
                zero=gather(self.k_zero),
                axis=self._k_axis,
                group_size=self._k_group,
                bits=self.config.bits,
            ),
            v_params=QuantParams(
                scale=gather(self.v_scale),
                zero=gather(self.v_zero),
                axis=self._v_axis,
                group_size=self._v_group,
                bits=self.config.bits,
            ),
        )
        return batch.dequant_kv(self.config)

    def dequant_seq(self, handle: PagedSeqHandle) -> Tuple[np.ndarray, np.ndarray]:
        """FP32 ``[1, hkv, packed_len, d]`` reconstruction, memoized.

        Blocks are append-only for a live handle, so the memo extends
        with just the new pages' dequant on a flush — bit-identical to a
        full rebuild by per-block independence, and O(new blocks) per
        step instead of O(context).
        """
        nb = handle.n_blocks
        if nb == 0:
            empty = np.zeros((1, self.hkv, 0, self.head_dim), np.float32)
            return empty, empty
        memo = handle._dequant_memo
        if memo is not None and memo[0] == nb:
            return memo[1]
        pages = np.asarray(self.table.sequences[handle.seq_id].pages[:nb])
        if memo is not None and memo[0] < nb:
            k_new, v_new = self._dequant_pages(pages[memo[0] :])
            kv = (
                np.concatenate([memo[1][0], k_new], axis=2),
                np.concatenate([memo[1][1], v_new], axis=2),
            )
        else:
            kv = self._dequant_pages(pages)
        handle._dequant_memo = (nb, kv)
        return kv

    def residual_view(self, handle: PagedSeqHandle) -> Tuple[np.ndarray, np.ndarray]:
        """Valid FP16 residual rows, ``[1, hkv, res_len, d]``."""
        n = handle.res_len
        return (
            self.res_k[handle.slot][None, :, :n],
            self.res_v[handle.slot][None, :, :n],
        )

    # ------------------------------------------------------------ accounting

    @property
    def packed_nbytes(self) -> int:
        """Physical bytes of the packed-word pool (all pages)."""
        return self.k_words.nbytes + self.v_words.nbytes

    @property
    def meta_nbytes(self) -> int:
        """Physical bytes of the quantization-metadata pool."""
        k_meta = self.k_scale.nbytes + self.k_zero.nbytes
        return k_meta + self.v_scale.nbytes + self.v_zero.nbytes

    @property
    def residual_nbytes(self) -> int:
        """Physical bytes of the FP16 residual slots."""
        return self.res_k.nbytes + self.res_v.nbytes


@register_backend
class PagedBitBackend(AttentionBackend):
    """Quantized decode over the paged pool, behind per-sequence block tables.

    All handles of one cache geometry ``(hkv, head_dim)`` share a single
    lazily-created :class:`PagedBitKVCache` — releasing one handle's
    sequences really does recycle its packed pages for whichever handle
    is admitted next, which is the serving contract preemption relies on
    (and what the page-recycling tests exercise through this API).
    Sequences in a handle may have *different* lengths (ragged serving
    batches): decode loops per sequence, each through the very same
    :meth:`BitDecoding.decode` kernel path the contiguous backend uses,
    against that sequence's gathered pages.
    """

    name = "paged-bit"

    def __init__(
        self,
        engine: Union[BitDecoding, BitDecodingConfig, None] = None,
        arch: Union[ArchSpec, str] = "a100",
        n_pages: int = 256,
        n_slots: int = 64,
    ):
        self.engine = coerce_engine(engine, arch)
        self.config = self.engine.config
        self.n_pages = n_pages
        self.n_slots = n_slots
        self._stores: dict = {}

    @property
    def attention_system(self) -> BitDecoding:
        return self.engine

    # ------------------------------------------------------------- numerics

    def store_for(self, hkv: int, head_dim: int) -> PagedBitKVCache:
        """The shared page pool of one cache geometry (created lazily)."""
        key = (hkv, head_dim)
        store = self._stores.get(key)
        if store is None:
            store = PagedBitKVCache(
                self.config, hkv, head_dim, n_pages=self.n_pages, n_slots=self.n_slots
            )
            self._stores[key] = store
        return store

    def new_handle(self, batch: int, hkv: int, head_dim: int) -> PagedBatchHandle:
        store = self.store_for(hkv, head_dim)
        return PagedBatchHandle(store, [store.add_sequence() for _ in range(batch)])

    def _context(self, seqh: PagedSeqHandle):
        """FP32 reconstruction of a sequence's cached context (pre-write)."""
        if seqh.seq_len == 0:
            return None, None
        store = seqh.store
        k_hat, v_hat = store.dequant_seq(seqh)
        k_res, v_res = store.residual_view(seqh)
        if k_res.shape[2]:
            k_hat = np.concatenate([k_hat, k_res.astype(np.float32)], axis=2)
            v_hat = np.concatenate([v_hat, v_res.astype(np.float32)], axis=2)
        return k_hat, v_hat

    def prefill(
        self,
        q: Optional[np.ndarray],
        kv: Tuple[np.ndarray, np.ndarray],
        block_table: KVCacheHandle,
    ) -> Optional[np.ndarray]:
        bt: PagedBatchHandle = block_table
        k, v = kv
        n = k.shape[2]
        outs = []
        for b, seqh in enumerate(bt.seqs):
            ctx_k, ctx_v = self._context(seqh) if q is not None else (None, None)
            bt.store.reserve(seqh, n)
            bt.store.write_rows(seqh, k[b], v[b])
            if q is not None:
                out = chunked_causal_attention(
                    q[b : b + 1], ctx_k, ctx_v, k[b : b + 1], v[b : b + 1]
                )
                outs.append(out)
        if q is None:
            return None
        return np.concatenate(outs, axis=0)

    def append_kv(self, kv: Tuple[np.ndarray, np.ndarray], block_table: KVCacheHandle) -> None:
        bt: PagedBatchHandle = block_table
        k, v = kv
        for b, seqh in enumerate(bt.seqs):
            bt.store.reserve(seqh, 1)
            bt.store.write_rows(seqh, k[b][:, None], v[b][:, None])

    def decode_step(self, q: np.ndarray, block_table: KVCacheHandle) -> np.ndarray:
        bt: PagedBatchHandle = block_table
        tiers = bt.store.tiers
        if tiers is not None and bt.seqs:
            # Overlap model: while sequence b's tile walk runs, the next
            # sequence's non-resident pages stream in.  Only the first
            # sequence has nothing to hide behind — it faults synchronously.
            tiers.fault_in(bt.seqs[0].block_ids)
        outs = []
        for b, seqh in enumerate(bt.seqs):
            if tiers is not None and b + 1 < len(bt.seqs):
                tiers.fault_in(bt.seqs[b + 1].block_ids, prefetch=True)
            outs.append(self.engine.decode(q[b : b + 1], seqh))
        return np.concatenate(outs, axis=0)

    def release(self, block_table: KVCacheHandle) -> None:
        bt: PagedBatchHandle = block_table
        for seqh in bt.seqs:
            bt.store.release(seqh)
        bt.seqs = []
