"""Paged low-bit KV cache: packed words in a shared page pool.

This is the serving-side cache the paper's system implies but the
reproduction never had: the *same* struct-of-arrays packed-word /
``half2``-metadata tensors the contiguous :class:`BitKVCache` stores,
re-homed into a fixed pool of physical pages indexed by per-sequence
block tables.  One page holds one Tensor-Core-aligned packed block
(``N_r`` tokens across every KV head of one sequence), so:

- a page is exactly one flush's output — pages are written whole, never
  partially, which is what makes recycled pages safe (a reused page is
  fully overwritten before any decode can read it);
- the page *id* space is owned by :class:`~repro.pages.page_table.PageTable`
  over :class:`~repro.pages.allocator.PageAllocator` — the same machinery
  the serving engine schedules with, so admission, chunked prefill and
  preemption manipulate the very pages the numerics read, and preempting
  a sequence frees *packed* pages, not fp16 rows;
- the newest ``< N_r`` tokens live in a per-sequence FP16 residual slot
  (the paper's two-part cache), reserved per batch slot exactly as
  :func:`repro.model.memory.page_pool_size` accounts it.

Storage is bit-identical to the contiguous cache: blocks are produced by
the same :func:`~repro.core.residual_kernel.flush_blocks` and read back
through the same :class:`~repro.core.residual_kernel.PackedBlockBatch`
dequant, so a paged decode and a contiguous decode of the same tokens
agree exactly under ``numerics_mode="exact_tiled"`` (the parity suite in
``tests/attn`` enforces it).
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.attn.protocol import (
    AttentionBackend,
    KVCacheHandle,
    coerce_engine,
    register_backend,
)
from repro.attn.reference import chunked_causal_attention
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.core.quantization import QuantParams
from repro.core.residual_kernel import PackedBlockBatch, flush_blocks
from repro.gpu.arch import ArchSpec
from repro.pages.allocator import OutOfPagesError, PageAllocator
from repro.pages.page_table import PageTable
from repro.pages.tiers import TieredPageStore, TierObserver


class PagedSeqHandle(KVCacheHandle):
    """One sequence's block table into a :class:`PagedBitKVCache`.

    Duck-types the cache interface :meth:`BitDecoding.decode` reads
    (``config`` / ``batch`` / ``hkv`` / ``head_dim`` / ``dequant_kv`` /
    ``residual_kv``), so decode over a paged sequence runs through the
    exact same kernel code path as the contiguous cache.
    """

    seq_len = 0
    batch = 1

    def __init__(self, store: "PagedBitKVCache", seq_id: int, slot: int):
        self.store = store
        self.seq_id = seq_id
        self.slot = slot
        self.seq_len = 0
        self._dequant_memo: Optional[Tuple[int, Tuple[np.ndarray, np.ndarray]]] = None

    @property
    def config(self) -> BitDecodingConfig:
        return self.store.config

    @property
    def hkv(self) -> int:
        return self.store.hkv

    @property
    def head_dim(self) -> int:
        return self.store.head_dim

    @property
    def n_blocks(self) -> int:
        """Complete packed blocks (= pages actually holding packed words)."""
        return self.seq_len // self.store.block_tokens

    @property
    def res_len(self) -> int:
        """Tokens currently in this sequence's FP16 residual slot."""
        return self.seq_len % self.store.block_tokens

    @property
    def block_ids(self) -> List[int]:
        """Physical page ids of the packed blocks, in logical order."""
        return self.store.table.sequences[self.seq_id].pages[: self.n_blocks]

    def dequant_kv(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.store.dequant_seq(self)

    def residual_kv(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.store.residual_view(self)


class PagedBatchHandle(KVCacheHandle):
    """A lock-step batch of paged sequences over one shared store."""

    def __init__(self, store: "PagedBitKVCache", seqs: List[PagedSeqHandle]):
        self.store = store
        self.seqs = seqs

    @property
    def seq_len(self) -> int:
        return self.seqs[0].seq_len if self.seqs else 0


class PagedGroupView:
    """Batched cache view over one equal-``n_blocks`` shape group.

    Duck-types the same cache interface :meth:`BitDecoding.decode` reads,
    but with ``batch == len(handles)``: ``dequant_kv`` gathers every
    member's packed pages into one ``[G, hkv, L, d]`` SoA tensor (through
    the store's cached gather index maps) and ``residual_kv`` gathers the
    FP16 residual slots padded to the widest member, with
    ``residual_lengths`` carrying each member's true fill so the ragged
    residual kernel can stay tolerance-free.  One ``run_numeric`` call
    then covers the whole group — the batched-SoA kernel shape the
    per-sequence loop could never reach.
    """

    def __init__(self, store: "PagedBitKVCache", handles: List[PagedSeqHandle]):
        if not handles:
            raise ValueError("a shape group needs at least one sequence")
        nb = handles[0].n_blocks
        if any(h.n_blocks != nb for h in handles):
            raise ValueError("group members must share n_blocks (the shape key)")
        self.store = store
        self.handles = list(handles)
        self.batch = len(handles)
        self.residual_lengths = np.asarray([h.res_len for h in handles], dtype=np.int64)

    @property
    def config(self) -> BitDecodingConfig:
        return self.store.config

    @property
    def hkv(self) -> int:
        return self.store.hkv

    @property
    def head_dim(self) -> int:
        return self.store.head_dim

    def dequant_kv(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.store.dequant_group(self.handles)

    def residual_kv(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.store.residual_group(self.handles)


class PagedBitKVCache(TierObserver):
    """Page-pool storage for one layer's packed low-bit K/V.

    The pool arrays mirror :class:`PackedBlockBatch` with the block axis
    promoted to a *physical page* axis: ``k_words``/``v_words`` are
    ``[n_pages, hkv, ...fragment words...]`` and the quantization
    metadata ``[n_pages, hkv, ...group stats...]``.  FP16 residual slots
    are ``[n_slots, hkv, N_r, d]`` pairs handed out per resident
    sequence by their own :class:`PageAllocator` (the serving memory
    model reserves residual buffers per batch slot, not per page).

    Pass ``table`` to share an externally scheduled
    :class:`~repro.pages.page_table.PageTable` (the serving engine's):
    page reservation then belongs to the scheduler and
    :meth:`write_rows` only fills what was reserved.  Without ``table``
    the store owns its table and reserves pages as it writes.

    Pass ``tiers`` to spread the pool over a
    :class:`~repro.pages.tiers.TieredPageStore`: the pool axis then
    spans *frames* (device + host + disk), logical page ids map through
    the store's bijection, and this cache registers as a tier observer
    so migrations move its packed words and metadata bit-exactly.  Reads
    of a non-resident page take the measured fallback: the store faults
    it into the device tier synchronously and records the stall.
    """

    def __init__(
        self,
        config: BitDecodingConfig,
        hkv: int,
        head_dim: int,
        n_pages: int = 256,
        n_slots: int = 16,
        table: Optional[PageTable] = None,
        tiers: Optional[TieredPageStore] = None,
    ):
        if config.version == "fp4":
            raise NotImplementedError(
                "the paged pool stores integer packed words; the FP4 "
                "micro-scaling path has no paged backend yet"
            )
        if min(hkv, head_dim, n_slots) <= 0:
            raise ValueError("hkv, head_dim and n_slots must be positive")
        self.config = config
        self.hkv = hkv
        self.head_dim = head_dim
        nr = config.residual_block_size
        self.block_tokens = nr
        if table is None:
            table = PageTable(PageAllocator(n_pages), page_size=nr)
            self.shared_table = False
        else:
            if table.page_size != nr:
                raise ValueError(
                    f"shared page table's page_size ({table.page_size}) must equal "
                    f"the residual block size N_r ({nr}): one page holds one "
                    "packed block"
                )
            self.shared_table = True
        self.table = table
        n_pages = table.allocator.n_pages
        if tiers is not None:
            if tiers.allocator is not table.allocator:
                raise ValueError("tiers must be built over the page table's allocator")
            tiers.add_observer(self)
        self.tiers = tiers

        # One probe flush fixes every pool shape/dtype: the fragment-word
        # tensor and group-stat layouts depend only on (N_r, d, config),
        # never on batch/hkv/block count.
        zeros = np.zeros((1, 1, 1, nr, head_dim), np.float16)
        probe = flush_blocks(zeros, zeros, config)
        self._layout_name = probe.layout_name
        self._k_axis = probe.k_params.axis
        self._k_group = probe.k_params.group_size
        self._v_axis = probe.v_params.axis
        self._v_group = probe.v_params.group_size
        self.k_words = np.zeros((n_pages, hkv) + probe.k_words.shape[3:], probe.k_words.dtype)
        self.v_words = np.zeros((n_pages, hkv) + probe.v_words.shape[3:], probe.v_words.dtype)
        self.k_scale = np.zeros((n_pages, hkv) + probe.k_params.scale.shape[3:], np.float32)
        self.k_zero = np.zeros_like(self.k_scale)
        self.v_scale = np.zeros((n_pages, hkv) + probe.v_params.scale.shape[3:], np.float32)
        self.v_zero = np.zeros_like(self.v_scale)
        self.slots = PageAllocator(n_slots)
        self.res_k = np.zeros((n_slots, hkv, nr, head_dim), np.float16)
        self.res_v = np.zeros((n_slots, hkv, nr, head_dim), np.float16)

        # Gather-cache epochs (the dequant-memo machinery, store-wide).
        # ``frames_epoch`` advances whenever the page-id -> frame mapping
        # can move (tier migrations), invalidating cached gather index
        # maps but not gathered *values*; ``content_epoch`` advances when
        # page content or sequence membership changes (CoW remaps, page
        # clones, corruption, slot churn), invalidating gathered values
        # too.  Per-sequence handles keep their own append-only memo.
        self.frames_epoch = 0
        self.content_epoch = 0
        self._group_memos: dict = {}
        self._group_frame_maps: dict = {}

    def _pools(self) -> Tuple[np.ndarray, ...]:
        return (self.k_words, self.v_words, self.k_scale, self.k_zero, self.v_scale, self.v_zero)

    def _frames(self, pages) -> np.ndarray:
        """Physical pool indices for logical page ids (identity untiered)."""
        if self.tiers is None:
            return np.asarray(pages)
        return self.tiers.frames_of(list(pages))

    # --------------------------------------------------- TierObserver hooks

    def copy_frame(self, src: int, dst: int) -> None:
        self.frames_epoch += 1
        for pool in self._pools():
            pool[dst] = pool[src]

    def exchange_frames(self, a: int, b: int) -> None:
        self.frames_epoch += 1
        for pool in self._pools():
            tmp = pool[a].copy()
            pool[a] = pool[b]
            pool[b] = tmp

    def frame_checksum(self, frame: int) -> int:
        """CRC32 over every pool's bytes for one frame (packed words and
        quantization metadata alike — rot in a scale is as fatal as rot in
        a word)."""
        digest = 0
        for pool in self._pools():
            digest = zlib.crc32(np.ascontiguousarray(pool[frame]).tobytes(), digest)
        return digest & 0xFFFFFFFF

    def corrupt_frame(self, frame: int, salt: int) -> None:
        """Deterministically flip bits in one frame's packed K words.

        The mask is derived from ``salt`` and guaranteed nonzero, so the
        damage always changes the frame's checksum — injection can never
        silently miss.
        """
        self.frames_epoch += 1
        self.content_epoch += 1
        flat = self.k_words[frame].reshape(-1)
        idx = salt % flat.size
        # (salt | 1) keeps the low bit set, so the mask is never zero.
        flat[idx] ^= np.asarray((salt | 1) & np.iinfo(flat.dtype).max, dtype=flat.dtype)

    # ---------------------------------------------------------- sequences

    def adopt(self, seq_id: int, prefix_tokens: int = 0) -> PagedSeqHandle:
        """Bind an externally registered page-table sequence to the pool.

        ``prefix_tokens`` marks that many leading tokens as already packed
        into the sequence's pages (a prefix-cache hit): the handle starts
        at that length and decodes read the shared pages' packed words
        as-is — bit-exact reuse, no recompute.  Hits are page-granular, so
        the count must be block-aligned (the residual slot starts empty).
        """
        if prefix_tokens % self.block_tokens:
            raise ValueError(
                f"prefix_tokens ({prefix_tokens}) must be a multiple of the "
                f"packed block size N_r ({self.block_tokens}): prefix-cache "
                "hits are whole flushed pages"
            )
        if prefix_tokens > self.table.sequences[seq_id].length:
            raise ValueError("prefix_tokens exceeds the sequence's reserved length")
        try:
            slot = self.slots.allocate()
        except OutOfPagesError as err:
            raise OutOfPagesError(
                f"all {self.slots.n_pages} residual slots in use; release "
                "finished sequences or construct the pool with more n_slots"
            ) from err
        self.content_epoch += 1
        handle = PagedSeqHandle(self, seq_id, slot)
        handle.seq_len = prefix_tokens
        return handle

    def reattach(
        self,
        seq_id: int,
        seq_len: int,
        res_k: Optional[np.ndarray] = None,
        res_v: Optional[np.ndarray] = None,
    ) -> PagedSeqHandle:
        """Rebind a sequence whose pages survived while its handle did not.

        Swap-in path: the scheduler kept the page-table sequence (and its
        packed pages, wherever the tier store parked them) across a
        preemption, but the residual slot was returned.  ``seq_len`` may
        sit mid-block, so unlike :meth:`adopt` this also restores the
        partial FP16 residual rows (``[hkv, res_len, d]``) stashed at
        swap-out.
        """
        if seq_len > self.table.sequences[seq_id].length:
            raise ValueError("seq_len exceeds the sequence's reserved length")
        n_res = seq_len % self.block_tokens
        if n_res and (res_k is None or res_v is None):
            raise ValueError(
                f"seq_len ({seq_len}) implies {n_res} residual tokens; "
                "their FP16 rows must be supplied to reattach"
            )
        try:
            slot = self.slots.allocate()
        except OutOfPagesError as err:
            raise OutOfPagesError(
                f"all {self.slots.n_pages} residual slots in use; release "
                "finished sequences or construct the pool with more n_slots"
            ) from err
        self.content_epoch += 1
        handle = PagedSeqHandle(self, seq_id, slot)
        handle.seq_len = seq_len
        if n_res:
            self.res_k[slot][:, :n_res] = np.asarray(res_k, np.float16)
            self.res_v[slot][:, :n_res] = np.asarray(res_v, np.float16)
        return handle

    def add_sequence(self) -> PagedSeqHandle:
        """Register a fresh empty sequence (store-owned table mode)."""
        return self.adopt(self.table.add_sequence(0))

    def fork(self, handle: PagedSeqHandle) -> PagedSeqHandle:
        """Clone a sequence copy-on-write: share every page, copy the slot.

        The child maps the parent's physical pages — including a trailing
        reserved-but-unflushed one — and gets its own residual slot seeded
        with the parent's FP16 rows.  Packed pages stay shared until one
        side's flush lands on a shared page, at which point
        :meth:`_store_blocks` clones the mapping before writing (pages are
        written whole, so the "copy" is just a fresh page id).
        """
        child_seq = self.table.fork_sequence(handle.seq_id)
        child = self.adopt(child_seq)
        child.seq_len = handle.seq_len
        self.res_k[child.slot] = self.res_k[handle.slot]
        self.res_v[child.slot] = self.res_v[handle.slot]
        return child

    def free_slot(self, handle: PagedSeqHandle) -> None:
        """Return the residual slot; the scheduler owns the pages."""
        self.content_epoch += 1
        self.slots.release(handle.slot)
        handle._dequant_memo = None

    def release(self, handle: PagedSeqHandle) -> None:
        """Free the sequence's pages and residual slot."""
        self.table.release_sequence(handle.seq_id)
        self.free_slot(handle)

    def reserve(self, handle: PagedSeqHandle, n_tokens: int) -> None:
        """Reserve pages for ``n_tokens`` more tokens (store-owned mode).

        With a shared (scheduler-owned) table this is a no-op: the engine
        reserved the pages when it admitted/extended the sequence, and
        :meth:`write_rows` enforces that the reservation exists.
        """
        if not self.shared_table:
            self.table.extend_sequence(handle.seq_id, n_tokens)

    # -------------------------------------------------------------- writes

    def write_rows(self, handle: PagedSeqHandle, k_rows: np.ndarray, v_rows: np.ndarray) -> None:
        """Append ``n`` tokens' K/V (``[hkv, n, d]``) to a sequence.

        Rows stream through the residual slot; every time the slot fills
        to ``N_r`` the completed block is quantized+packed by the same
        :func:`flush_blocks` the contiguous cache uses and written whole
        into the sequence's next physical page.  Runs of complete blocks
        (bulk prefill) skip the slot and flush straight from the input in
        one batched call — bit-identical, per-block independence.
        """
        k_rows = np.asarray(k_rows, np.float16)
        v_rows = np.asarray(v_rows, np.float16)
        if k_rows.shape != v_rows.shape or k_rows.ndim != 3:
            raise ValueError("K and V rows must share an [hkv, n, d] shape")
        n = k_rows.shape[1]
        seq = self.table.sequences[handle.seq_id]
        if handle.seq_len + n > seq.length:
            raise ValueError(
                f"write of {n} tokens at {handle.seq_len} exceeds the "
                f"sequence's reserved length ({seq.length}); reserve pages first"
            )
        nr = self.block_tokens
        res_k = self.res_k[handle.slot]
        res_v = self.res_v[handle.slot]
        written = 0
        while written < n:
            fill = handle.seq_len % nr
            remaining = n - written
            if fill == 0 and remaining >= nr:
                nb = remaining // nr
                shape = (self.hkv, nb, nr, self.head_dim)
                flushed = flush_blocks(
                    k_rows[:, written : written + nb * nr].reshape(shape)[None],
                    v_rows[:, written : written + nb * nr].reshape(shape)[None],
                    self.config,
                )
                first = handle.seq_len // nr
                self._store_blocks(handle, first, nb, flushed)
                handle.seq_len += nb * nr
                written += nb * nr
                continue
            take = min(nr - fill, remaining)
            res_k[:, fill : fill + take] = k_rows[:, written : written + take]
            res_v[:, fill : fill + take] = v_rows[:, written : written + take]
            handle.seq_len += take
            written += take
            if handle.seq_len % nr == 0:
                flushed = flush_blocks(res_k[None, :, None], res_v[None, :, None], self.config)
                self._store_blocks(handle, handle.seq_len // nr - 1, 1, flushed)

    def _store_blocks(
        self, handle: PagedSeqHandle, first_block: int, nb: int, flushed: PackedBlockBatch
    ) -> None:
        """Write a flush's blocks into physical pages, whole pages only.

        Copy-on-write guard: a target page mapped by more than one
        sequence (a forked clone) is swapped for a fresh exclusive page
        before the write — and since pages are only ever written whole,
        no content copy is needed, just the remap.
        """
        pages = []
        for i in range(nb):
            page, copied_from = self.table.ensure_exclusive(handle.seq_id, first_block + i)
            if copied_from is not None:
                self.content_epoch += 1
            pages.append(page)
        idx = self._frames(pages)
        self.k_words[idx] = flushed.k_words[0].swapaxes(0, 1)
        self.v_words[idx] = flushed.v_words[0].swapaxes(0, 1)
        self.k_scale[idx] = flushed.k_params.scale[0].swapaxes(0, 1)
        self.k_zero[idx] = flushed.k_params.zero[0].swapaxes(0, 1)
        self.v_scale[idx] = flushed.v_params.scale[0].swapaxes(0, 1)
        self.v_zero[idx] = flushed.v_params.zero[0].swapaxes(0, 1)

    def append_rows(self, handles: List[PagedSeqHandle], k_rows: np.ndarray, v_rows: np.ndarray) -> None:
        """Append ONE token to every handle at once (``[B, hkv, d]`` rows).

        The decode-step write path, batched: one fancy-index scatter lands
        every sequence's new row in its residual slot at its own fill, and
        the sequences whose slot just filled are flushed through a single
        leading-dim-batched :func:`flush_blocks` call — bit-identical to
        per-sequence :meth:`write_rows` by per-block independence.
        """
        k_rows = np.asarray(k_rows, np.float16)
        v_rows = np.asarray(v_rows, np.float16)
        if k_rows.shape != v_rows.shape or k_rows.ndim != 3 or k_rows.shape[0] != len(handles):
            raise ValueError("K and V rows must share a [batch, hkv, d] shape")
        for handle in handles:
            seq = self.table.sequences[handle.seq_id]
            if handle.seq_len + 1 > seq.length:
                raise ValueError(
                    f"write of 1 tokens at {handle.seq_len} exceeds the "
                    f"sequence's reserved length ({seq.length}); reserve pages first"
                )
        nr = self.block_tokens
        slots = np.asarray([h.slot for h in handles])
        fills = np.asarray([h.seq_len % nr for h in handles])
        self.res_k[slots, :, fills] = k_rows
        self.res_v[slots, :, fills] = v_rows
        flushing: List[PagedSeqHandle] = []
        for handle in handles:
            handle.seq_len += 1
            if handle.seq_len % nr == 0:
                flushing.append(handle)
        if flushing:
            fslots = np.asarray([h.slot for h in flushing])
            flushed = flush_blocks(
                self.res_k[fslots][:, :, None], self.res_v[fslots][:, :, None], self.config
            )
            self._store_blocks_group(flushing, flushed)

    def write_rows_group(
        self, handles: List[PagedSeqHandle], k_rows: np.ndarray, v_rows: np.ndarray
    ) -> None:
        """Bulk-write ``n`` tokens to every handle at once (``[G, hkv, n, d]``).

        The no-query prefill write path, batched: every handle must sit at
        a block-aligned fill (fresh admissions do), so the complete blocks
        flush through one ``[G, hkv, nb, N_r, d]`` :func:`flush_blocks`
        call and the common remainder scatters into the residual slots in
        one assignment — bit-identical to per-sequence :meth:`write_rows`.
        """
        k_rows = np.asarray(k_rows, np.float16)
        v_rows = np.asarray(v_rows, np.float16)
        if k_rows.shape != v_rows.shape or k_rows.ndim != 4 or k_rows.shape[0] != len(handles):
            raise ValueError("K and V rows must share a [batch, hkv, n, d] shape")
        n = k_rows.shape[2]
        nr = self.block_tokens
        for handle in handles:
            if handle.seq_len % nr:
                raise ValueError("write_rows_group requires block-aligned fills")
            seq = self.table.sequences[handle.seq_id]
            if handle.seq_len + n > seq.length:
                raise ValueError(
                    f"write of {n} tokens at {handle.seq_len} exceeds the "
                    f"sequence's reserved length ({seq.length}); reserve pages first"
                )
        nb, rem = divmod(n, nr)
        if nb:
            shape = (len(handles), self.hkv, nb, nr, self.head_dim)
            flushed = flush_blocks(
                k_rows[:, :, : nb * nr].reshape(shape),
                v_rows[:, :, : nb * nr].reshape(shape),
                self.config,
            )
            self._store_blocks_group(handles, flushed, advance=nb * nr)
        if rem:
            slots = np.asarray([h.slot for h in handles])
            self.res_k[slots, :, :rem] = k_rows[:, :, nb * nr :]
            self.res_v[slots, :, :rem] = v_rows[:, :, nb * nr :]
            for handle in handles:
                handle.seq_len += rem

    def _store_blocks_group(
        self, handles: List[PagedSeqHandle], flushed: PackedBlockBatch, advance: int = 0
    ) -> None:
        """Write one batched flush (batch axis = handles) into pages.

        With ``advance`` the flush holds ``advance // N_r`` *new* blocks
        per handle starting at its current length (bulk prefill); without
        it the flush holds each handle's just-completed block (decode
        append).  Same whole-page copy-on-write guard as
        :meth:`_store_blocks`.
        """
        nr = self.block_tokens
        nb = flushed.k_words.shape[2]
        pages: List[int] = []
        for handle in handles:
            first = handle.seq_len // nr if advance else handle.seq_len // nr - nb
            for i in range(nb):
                page, copied_from = self.table.ensure_exclusive(handle.seq_id, first + i)
                if copied_from is not None:
                    self.content_epoch += 1
                pages.append(page)
            if advance:
                handle.seq_len += advance
        idx = self._frames(pages)

        def rows(tensor: np.ndarray) -> np.ndarray:
            # [G, hkv, nb, ...] -> [G*nb, hkv, ...] in page-list order.
            return tensor.swapaxes(1, 2).reshape((len(pages),) + tensor.shape[1:2] + tensor.shape[3:])

        self.k_words[idx] = rows(flushed.k_words)
        self.v_words[idx] = rows(flushed.v_words)
        self.k_scale[idx] = rows(flushed.k_params.scale)
        self.k_zero[idx] = rows(flushed.k_params.zero)
        self.v_scale[idx] = rows(flushed.v_params.scale)
        self.v_zero[idx] = rows(flushed.v_params.zero)

    def copy_pages(self, src: List[int], dst: List[int]) -> None:
        """Clone packed words + metadata between physical pages.

        The engine's ``prefix_share=False`` diagnostic mode uses this to
        materialize prefix-cache hits as private copies instead of shared
        mappings — the numerics must be bit-identical either way, which is
        exactly what the sharing acceptance test pins down.
        """
        if len(src) != len(dst):
            raise ValueError("src and dst page lists must have equal length")
        if not src:
            return
        self.content_epoch += 1
        s, d = self._frames(src), self._frames(dst)
        self.k_words[d] = self.k_words[s]
        self.v_words[d] = self.v_words[s]
        self.k_scale[d] = self.k_scale[s]
        self.k_zero[d] = self.k_zero[s]
        self.v_scale[d] = self.v_scale[s]
        self.v_zero[d] = self.v_zero[s]

    # --------------------------------------------------------------- reads

    def _dequant_pages(self, pages: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Gather pages into a :class:`PackedBlockBatch` and dequantize.

        Under a tier store this is the measured fallback: any page still
        off-device faults in synchronously (stall recorded) before the
        gather, so reads are always device reads.
        """
        if self.tiers is not None:
            self.tiers.fault_in([int(p) for p in pages])
        frames = self._frames(pages)

        def gather(pool: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(pool[frames].swapaxes(0, 1))[None]

        batch = PackedBlockBatch(
            length=self.block_tokens,
            head_dim=self.head_dim,
            bits=self.config.bits,
            word_bits=self.config.word_bits,
            layout_name=self._layout_name,
            k_words=gather(self.k_words),
            v_words=gather(self.v_words),
            k_params=QuantParams(
                scale=gather(self.k_scale),
                zero=gather(self.k_zero),
                axis=self._k_axis,
                group_size=self._k_group,
                bits=self.config.bits,
            ),
            v_params=QuantParams(
                scale=gather(self.v_scale),
                zero=gather(self.v_zero),
                axis=self._v_axis,
                group_size=self._v_group,
                bits=self.config.bits,
            ),
        )
        return batch.dequant_kv(self.config)

    def dequant_seq(self, handle: PagedSeqHandle) -> Tuple[np.ndarray, np.ndarray]:
        """FP32 ``[1, hkv, packed_len, d]`` reconstruction, memoized.

        Blocks are append-only for a live handle, so the memo extends
        with just the new pages' dequant on a flush — bit-identical to a
        full rebuild by per-block independence, and O(new blocks) per
        step instead of O(context).
        """
        nb = handle.n_blocks
        if nb == 0:
            empty = np.zeros((1, self.hkv, 0, self.head_dim), np.float32)
            return empty, empty
        memo = handle._dequant_memo
        if memo is not None and memo[0] == nb:
            return memo[1]
        pages = np.asarray(self.table.sequences[handle.seq_id].pages[:nb])
        if memo is not None and memo[0] < nb:
            k_new, v_new = self._dequant_pages(pages[memo[0] :])
            kv = (
                np.concatenate([memo[1][0], k_new], axis=2),
                np.concatenate([memo[1][1], v_new], axis=2),
            )
        else:
            kv = self._dequant_pages(pages)
        handle._dequant_memo = (nb, kv)
        return kv

    def residual_view(self, handle: PagedSeqHandle) -> Tuple[np.ndarray, np.ndarray]:
        """Valid FP16 residual rows, ``[1, hkv, res_len, d]``."""
        n = handle.res_len
        return (
            self.res_k[handle.slot][None, :, :n],
            self.res_v[handle.slot][None, :, :n],
        )

    # ------------------------------------------------------- grouped reads

    #: Bound on cached gather maps / group dequant memos.  Keys are the
    #: exact member tuple, so scheduler churn retires entries naturally;
    #: the cap just keeps pathological churn from hoarding memory.
    _GROUP_CACHE_ENTRIES = 32

    @staticmethod
    def _cache_put(cache: dict, key, entry) -> None:
        cache.pop(key, None)
        cache[key] = entry
        while len(cache) > PagedBitKVCache._GROUP_CACHE_ENTRIES:
            cache.pop(next(iter(cache)))

    def group_view(self, handles: List[PagedSeqHandle]) -> PagedGroupView:
        """A batched decode view over one equal-``n_blocks`` group."""
        return PagedGroupView(self, handles)

    def _group_frames(self, key, handles: List[PagedSeqHandle], nb: int) -> np.ndarray:
        """Cached ``np.take`` index map ``[G, nb]`` into the pool arrays.

        Valid while both epochs stand; a pure append extends the cached
        map with just the new pages' frames (block tables are append-only
        for live handles).  Callers fault pages in *first* — a promotion
        moves frames and must bump ``frames_epoch`` before the map is
        built, not after.
        """
        entry = self._group_frame_maps.get(key)
        if (
            entry is not None
            and entry["frames_epoch"] == self.frames_epoch
            and entry["content_epoch"] == self.content_epoch
            and entry["nb"] <= nb
        ):
            have = entry["nb"]
            if have == nb:
                return entry["map"]
            fresh = np.asarray(
                [self.table.sequences[h.seq_id].pages[have:nb] for h in handles]
            )
            fmap = np.concatenate(
                [entry["map"], self._frames(fresh.reshape(-1)).reshape(len(handles), nb - have)],
                axis=1,
            )
        else:
            pages = np.asarray([self.table.sequences[h.seq_id].pages[:nb] for h in handles])
            fmap = self._frames(pages.reshape(-1)).reshape(len(handles), nb)
        self._cache_put(
            self._group_frame_maps,
            key,
            {
                "nb": nb,
                "frames_epoch": self.frames_epoch,
                "content_epoch": self.content_epoch,
                "map": fmap,
            },
        )
        return fmap

    def _dequant_pages_group(
        self, key, handles: List[PagedSeqHandle], lo: int, hi: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather blocks ``[lo, hi)`` of every member and dequantize batched.

        One fancy-index gather per pool assembles the ``[G, hkv, ...]``
        SoA tensors; dequant is per-block independent, so the batched
        reconstruction is bit-identical to per-sequence gathers.
        """
        if self.tiers is not None:
            self.tiers.fault_in(
                [int(p) for h in handles for p in self.table.sequences[h.seq_id].pages[lo:hi]]
            )
        fmap = self._group_frames(key, handles, hi)[:, lo:hi].reshape(-1)

        def gather(pool: np.ndarray) -> np.ndarray:
            flat = pool.take(fmap, axis=0)
            shaped = flat.reshape((len(handles), hi - lo) + pool.shape[1:])
            return np.ascontiguousarray(shaped.swapaxes(1, 2))

        batch = PackedBlockBatch(
            length=self.block_tokens,
            head_dim=self.head_dim,
            bits=self.config.bits,
            word_bits=self.config.word_bits,
            layout_name=self._layout_name,
            k_words=gather(self.k_words),
            v_words=gather(self.v_words),
            k_params=QuantParams(
                scale=gather(self.k_scale),
                zero=gather(self.k_zero),
                axis=self._k_axis,
                group_size=self._k_group,
                bits=self.config.bits,
            ),
            v_params=QuantParams(
                scale=gather(self.v_scale),
                zero=gather(self.v_zero),
                axis=self._v_axis,
                group_size=self._v_group,
                bits=self.config.bits,
            ),
        )
        return batch.dequant_kv(self.config)

    def dequant_group(self, handles: List[PagedSeqHandle]) -> Tuple[np.ndarray, np.ndarray]:
        """FP32 ``[G, hkv, packed_len, d]`` group reconstruction, memoized.

        The memo is keyed by the exact ``(seq_id, slot)`` member tuple and
        guarded by ``content_epoch``; while the group composition holds
        (steady-state decode), each step extends it with one batched
        dequant of the newly flushed block column instead of rebuilding
        O(context) state.
        """
        nb = handles[0].n_blocks
        if nb == 0:
            empty = np.zeros((len(handles), self.hkv, 0, self.head_dim), np.float32)
            return empty, empty
        key = tuple((h.seq_id, h.slot) for h in handles)
        memo = self._group_memos.get(key)
        if memo is not None and memo["epoch"] == self.content_epoch and memo["nb"] <= nb:
            if memo["nb"] == nb:
                return memo["kv"]
            k_new, v_new = self._dequant_pages_group(key, handles, memo["nb"], nb)
            kv = (
                np.concatenate([memo["kv"][0], k_new], axis=2),
                np.concatenate([memo["kv"][1], v_new], axis=2),
            )
        else:
            kv = self._dequant_pages_group(key, handles, 0, nb)
        self._cache_put(self._group_memos, key, {"nb": nb, "epoch": self.content_epoch, "kv": kv})
        return kv

    def residual_group(self, handles: List[PagedSeqHandle]) -> Tuple[np.ndarray, np.ndarray]:
        """FP16 residual rows gathered ``[G, hkv, r_max, d]``, zero-padded.

        Rows past a member's fill are zeroed (slots hold stale rows from
        earlier fills); the ragged residual kernel masks their score
        columns to ``-inf`` anyway, but the contract is that pad K *and*
        V rows are exact zeros.
        """
        res = [h.res_len for h in handles]
        r_max = max(res)
        slots = np.asarray([h.slot for h in handles])
        k = self.res_k[slots][:, :, :r_max].copy()
        v = self.res_v[slots][:, :, :r_max].copy()
        for g, r in enumerate(res):
            if r < r_max:
                k[g, :, r:] = 0
                v[g, :, r:] = 0
        return k, v

    # ------------------------------------------------------------ accounting

    @property
    def packed_nbytes(self) -> int:
        """Physical bytes of the packed-word pool (all pages)."""
        return self.k_words.nbytes + self.v_words.nbytes

    @property
    def meta_nbytes(self) -> int:
        """Physical bytes of the quantization-metadata pool."""
        k_meta = self.k_scale.nbytes + self.k_zero.nbytes
        return k_meta + self.v_scale.nbytes + self.v_zero.nbytes

    @property
    def residual_nbytes(self) -> int:
        """Physical bytes of the FP16 residual slots."""
        return self.res_k.nbytes + self.res_v.nbytes


@register_backend
class PagedBitBackend(AttentionBackend):
    """Quantized decode over the paged pool, behind per-sequence block tables.

    All handles of one cache geometry ``(hkv, head_dim)`` share a single
    lazily-created :class:`PagedBitKVCache` — releasing one handle's
    sequences really does recycle its packed pages for whichever handle
    is admitted next, which is the serving contract preemption relies on
    (and what the page-recycling tests exercise through this API).
    Sequences in a handle may have *different* lengths (ragged serving
    batches): decode partitions the batch into equal-shape groups
    (:meth:`_decode_groups`) and launches ONE batched kernel per group
    over a gathered ``[group, hkv, ...]`` SoA view — bit-identical to
    the retained per-sequence loop (:meth:`decode_step_looped`), because
    both run the very same :meth:`BitDecoding.decode` numeric path.
    """

    name = "paged-bit"

    def __init__(
        self,
        engine: Union[BitDecoding, BitDecodingConfig, None] = None,
        arch: Union[ArchSpec, str] = "a100",
        n_pages: int = 256,
        n_slots: int = 64,
    ):
        self.engine = coerce_engine(engine, arch)
        self.config = self.engine.config
        self.n_pages = n_pages
        self.n_slots = n_slots
        self._stores: dict = {}

    @property
    def attention_system(self) -> BitDecoding:
        return self.engine

    # ------------------------------------------------------------- numerics

    def store_for(self, hkv: int, head_dim: int) -> PagedBitKVCache:
        """The shared page pool of one cache geometry (created lazily)."""
        key = (hkv, head_dim)
        store = self._stores.get(key)
        if store is None:
            store = PagedBitKVCache(
                self.config, hkv, head_dim, n_pages=self.n_pages, n_slots=self.n_slots
            )
            self._stores[key] = store
        return store

    def make_store(
        self,
        hkv: int,
        head_dim: int,
        *,
        n_slots: int,
        table: Optional[PageTable] = None,
        tiers: Optional[TieredPageStore] = None,
    ):
        """Build one per-layer store over an external (scheduler) table.

        The :class:`~repro.attn.runner.ModelRunner` constructs its
        per-layer pools through this hook rather than instantiating
        :class:`PagedBitKVCache` directly, so a backend can substitute its
        own storage layout — the tensor-parallel backend returns a
        composite store holding one rank-local pool per shard.
        """
        return PagedBitKVCache(self.config, hkv, head_dim, n_slots=n_slots, table=table, tiers=tiers)

    def new_handle(self, batch: int, hkv: int, head_dim: int) -> PagedBatchHandle:
        store = self.store_for(hkv, head_dim)
        return PagedBatchHandle(store, [store.add_sequence() for _ in range(batch)])

    def _context(self, seqh: PagedSeqHandle):
        """FP32 reconstruction of a sequence's cached context (pre-write)."""
        if seqh.seq_len == 0:
            return None, None
        store = seqh.store
        k_hat, v_hat = store.dequant_seq(seqh)
        k_res, v_res = store.residual_view(seqh)
        if k_res.shape[2]:
            k_hat = np.concatenate([k_hat, k_res.astype(np.float32)], axis=2)
            v_hat = np.concatenate([v_hat, v_res.astype(np.float32)], axis=2)
        return k_hat, v_hat

    def prefill(
        self,
        q: Optional[np.ndarray],
        kv: Tuple[np.ndarray, np.ndarray],
        block_table: KVCacheHandle,
    ) -> Optional[np.ndarray]:
        bt: PagedBatchHandle = block_table
        k, v = kv
        n = k.shape[2]
        if q is None:
            # Batched write path: reserve first (same page-id assignment
            # order as the per-sequence loop), then bulk-write every
            # block-aligned member through one batched flush.
            for seqh in bt.seqs:
                bt.store.reserve(seqh, n)
            aligned = [b for b, s in enumerate(bt.seqs) if s.res_len == 0]
            if len(aligned) > 1:
                bt.store.write_rows_group(
                    [bt.seqs[b] for b in aligned], k[aligned], v[aligned]
                )
            else:
                aligned = []
            for b, seqh in enumerate(bt.seqs):
                if b not in aligned:
                    bt.store.write_rows(seqh, k[b], v[b])
            return None
        outs = []
        for b, seqh in enumerate(bt.seqs):
            ctx_k, ctx_v = self._context(seqh)
            bt.store.reserve(seqh, n)
            bt.store.write_rows(seqh, k[b], v[b])
            out = chunked_causal_attention(
                q[b : b + 1], ctx_k, ctx_v, k[b : b + 1], v[b : b + 1]
            )
            outs.append(out)
        return np.concatenate(outs, axis=0)

    def append_kv(self, kv: Tuple[np.ndarray, np.ndarray], block_table: KVCacheHandle) -> None:
        bt: PagedBatchHandle = block_table
        k, v = kv
        for seqh in bt.seqs:
            bt.store.reserve(seqh, 1)
        bt.store.append_rows(bt.seqs, k, v)

    def _decode_groups(self, seqs: List[PagedSeqHandle]) -> List[List[int]]:
        """Partition a ragged batch into equal-shape decode groups.

        The shape key is ``n_blocks`` — the packed tile walk must share
        its extent to batch into one ``run_numeric`` call — with ragged
        residual fills padded inside the group (tolerance-free contract in
        :func:`~repro.core.residual_kernel.attend_residual_grouped`).
        Configs on the broken non-cooperative softmax are
        partition-sensitive, so they group by exact ``(n_blocks,
        res_len)`` instead.  Group order is first occurrence in the batch,
        which fixes the fault_in order deterministically.
        """
        ragged_ok = self.config.use_coop_softmax or self.config.effective_wn == 1
        groups: dict = {}
        for b, seqh in enumerate(seqs):
            key = seqh.n_blocks if ragged_ok else (seqh.n_blocks, seqh.res_len)
            groups.setdefault(key, []).append(b)
        return list(groups.values())

    def decode_step(self, q: np.ndarray, block_table: KVCacheHandle) -> np.ndarray:
        bt: PagedBatchHandle = block_table
        if len(bt.seqs) <= 1:
            return self.decode_step_looped(q, bt)
        tiers = bt.store.tiers
        groups = self._decode_groups(bt.seqs)
        if tiers is not None:
            # Overlap model at group granularity: while a group's batched
            # tile walk runs, the next group's non-resident pages stream
            # in.  Only the first group faults synchronously.
            tiers.fault_in([p for b in groups[0] for p in bt.seqs[b].block_ids])
        outs: List[Optional[np.ndarray]] = [None] * len(bt.seqs)
        for gi, idxs in enumerate(groups):
            if tiers is not None and gi + 1 < len(groups):
                tiers.fault_in(
                    [p for b in groups[gi + 1] for p in bt.seqs[b].block_ids], prefetch=True
                )
            if len(idxs) == 1:
                b = idxs[0]
                outs[b] = self.engine.decode(q[b : b + 1], bt.seqs[b])
            else:
                view = bt.store.group_view([bt.seqs[b] for b in idxs])
                out = self.engine.decode(q[idxs], view)
                for j, b in enumerate(idxs):
                    outs[b] = out[j : j + 1]
        return np.concatenate(outs, axis=0)

    def decode_step_looped(self, q: np.ndarray, block_table: KVCacheHandle) -> np.ndarray:
        """The pre-grouping reference path: one decode per sequence.

        Retained as the parity baseline (grouped decode must match it
        bit-for-bit) and as the bench's looped comparator.
        """
        bt: PagedBatchHandle = block_table
        tiers = bt.store.tiers
        if tiers is not None and bt.seqs:
            tiers.fault_in(bt.seqs[0].block_ids)
        outs = []
        for b, seqh in enumerate(bt.seqs):
            if tiers is not None and b + 1 < len(bt.seqs):
                tiers.fault_in(bt.seqs[b + 1].block_ids, prefetch=True)
            outs.append(self.engine.decode(q[b : b + 1], seqh))
        return np.concatenate(outs, axis=0)

    def release(self, block_table: KVCacheHandle) -> None:
        bt: PagedBatchHandle = block_table
        for seqh in bt.seqs:
            bt.store.release(seqh)
        bt.seqs = []
