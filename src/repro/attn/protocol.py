"""The ``AttentionBackend`` protocol: one API over every cache implementation.

The reproduction grows three ways of answering "attend this query over
that sequence's KV history":

- real numerics over a *paged* low-bit cache (packed words living in a
  shared page pool behind per-sequence block tables),
- real numerics over the *contiguous* struct-of-arrays cache (the
  bit-exact reference the kernel tests pin),
- the *analytical* cost model (no tokens, just milliseconds).

This module defines the protocol all three implement, so the transformer
and the serving engine stop caring which one they are wired to:

- :class:`KVCacheHandle` — an opaque per-layer cache binding.  For the
  paged backend the handle literally *is* a set of block tables into the
  shared pool; for the contiguous backend it wraps a
  :class:`~repro.core.attention.BitKVCache`.
- :class:`AttentionBackend` — ``prefill(q, kv, block_table)`` /
  ``append_kv(kv, block_table)`` / ``decode_step(q, block_table)`` plus
  the step-pricing surface (``decode_step_ms`` and friends) the serving
  engine schedules with.  Numeric backends price steps through their own
  kernel model; the analytical backend prices steps and refuses tokens.

Backends register themselves under a short name
(:func:`register_backend`), so callers can resolve one by configuration:
``get_backend("paged-bit", engine=BitDecodingConfig(bits=4))``.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional, Sequence, Tuple, Type

import numpy as np


class KVCacheHandle(abc.ABC):
    """Opaque handle to one layer's KV state inside a backend.

    Callers treat handles as tokens of identity: they are created by
    :meth:`AttentionBackend.new_handle`, threaded through ``prefill`` /
    ``append_kv`` / ``decode_step``, and released with
    :meth:`AttentionBackend.release`.  The only universally meaningful
    observable is :attr:`seq_len`.
    """

    @property
    @abc.abstractmethod
    def seq_len(self) -> int:
        """Tokens currently cached (per sequence; lock-step batches share it)."""


class AttentionBackend(abc.ABC):
    """One attention implementation: numeric token execution + step pricing.

    Numeric surface (``new_handle`` / ``prefill`` / ``append_kv`` /
    ``decode_step``): shapes follow the decode-engine convention —
    queries are ``[batch, q_len, hq, d]``, K/V are ``[batch, hkv, n, d]``.
    ``prefill`` may be called repeatedly on the same handle to continue a
    context chunk by chunk (chunked prefill); backends that only support
    whole-prompt packing raise on continuation.

    Timing surface (``prefill_time_ms`` / ``decode_step_ms`` /
    ``mixed_step_ms``): the serving engine's clock.  Defaults delegate to
    the end-to-end latency model over :attr:`attention_system`, so every
    backend prices steps consistently with the static serving model.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"
    #: Whether the numeric surface is implemented (False for analytical).
    executes_tokens: bool = True

    # ------------------------------------------------------------- numerics

    @abc.abstractmethod
    def new_handle(self, batch: int, hkv: int, head_dim: int) -> KVCacheHandle:
        """Create an empty cache handle for ``batch`` lock-step sequences."""

    @abc.abstractmethod
    def prefill(
        self,
        q: Optional[np.ndarray],
        kv: Tuple[np.ndarray, np.ndarray],
        block_table: KVCacheHandle,
    ) -> Optional[np.ndarray]:
        """Write a context chunk ``kv`` and attend ``q`` over it causally.

        ``q`` is ``[batch, n, hq, d]`` (post-RoPE) or None to only build
        the cache; ``kv`` is ``(k, v)`` of shape ``[batch, hkv, n, d]``.
        When the handle already holds context, the chunk continues it:
        queries attend the cached tokens unmasked and the new tokens
        causally.  Returns the attention output ``[batch, n, hq, d]`` (or
        None when ``q`` is None).
        """

    @abc.abstractmethod
    def append_kv(self, kv: Tuple[np.ndarray, np.ndarray], block_table: KVCacheHandle) -> None:
        """Append one decoded token's K/V (``[batch, hkv, d]`` each)."""

    @abc.abstractmethod
    def decode_step(self, q: np.ndarray, block_table: KVCacheHandle) -> np.ndarray:
        """One decode attention step of ``q`` ``[batch, q_len, hq, d]``."""

    def release(self, block_table: KVCacheHandle) -> None:
        """Free whatever the handle pins (pages, slots); default no-op."""

    # --------------------------------------------------------------- timing

    @property
    @abc.abstractmethod
    def attention_system(self):
        """The kernel-level cost model (anything with ``decode_time_ms``)."""

    def prefill_time_ms(self, model, arch, prompt_len: int, n_gpus: int = 1) -> float:
        """Whole-prompt prefill latency (serving-engine admission charge)."""
        from repro.model.inference import prefill_time_ms

        return prefill_time_ms(model, arch, prompt_len, n_gpus)

    def decode_step_ms(
        self,
        model,
        arch,
        batch: int,
        seq_len: int,
        n_gpus: int = 1,
        decode_groups: Optional[Sequence[Tuple[int, int]]] = None,
        tp: int = 1,
    ) -> float:
        """One end-to-end decode step at a serving point.

        ``decode_groups`` — ``(group_batch, group_seq_len)`` per
        equal-shape kernel launch — prices grouped batched decode; omit it
        for one launch over the whole batch at ``seq_len``.  ``tp``
        head-shards the attention kernel across tensor-parallel ranks.
        """
        from repro.model.inference import decode_step_ms

        return decode_step_ms(
            model, arch, self.attention_system, batch, seq_len, n_gpus, decode_groups, tp
        )

    def mixed_step_ms(
        self,
        model,
        arch,
        decode_batch: int,
        decode_seq_len: int,
        prefill_chunks: Sequence[Tuple[int, int]],
        n_gpus: int = 1,
        decode_groups: Optional[Sequence[Tuple[int, int]]] = None,
        tp: int = 1,
    ) -> float:
        """One mixed prefill+decode scheduler quantum."""
        from repro.model.inference import mixed_step_ms

        return mixed_step_ms(
            model,
            arch,
            self.attention_system,
            decode_batch,
            decode_seq_len,
            prefill_chunks,
            n_gpus,
            decode_groups,
            tp,
        )


def coerce_engine(engine, arch="a100"):
    """Normalize a backend's ``engine`` argument to a ``BitDecoding``.

    Accepts a ready :class:`~repro.core.attention.BitDecoding`, a bare
    :class:`~repro.core.config.BitDecodingConfig` (an engine is built on
    ``arch``), or None (the default config).  Shared by the numeric
    backends so their constructors cannot drift.
    """
    from repro.core.attention import BitDecoding
    from repro.core.config import BitDecodingConfig

    if engine is None:
        engine = BitDecodingConfig()
    if isinstance(engine, BitDecodingConfig):
        engine = BitDecoding(engine, arch)
    return engine


# ---------------------------------------------------------------- registry

_BACKENDS: Dict[str, Type[AttentionBackend]] = {}


def register_backend(cls: Type[AttentionBackend]) -> Type[AttentionBackend]:
    """Class decorator: register a backend under its ``name``."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} must define a non-default 'name'")
    _BACKENDS[cls.name] = cls
    return cls


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str, **kwargs: Any) -> AttentionBackend:
    """Instantiate a registered backend by name.

    ``kwargs`` are forwarded to the backend constructor, e.g.
    ``get_backend("paged-bit", engine=BitDecodingConfig(bits=4))``.
    """
    try:
        cls = _BACKENDS[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise KeyError(f"unknown attention backend {name!r}; registered: {known}") from None
    return cls(**kwargs)
