"""Exact grouped-query prefill attention shared by the numeric backends.

Prefill is not the paper's focus (the kernels are about *decode* over a
low-bit cache), so every backend computes prefill attention the same
exact way: one grouped-query einsum per chunk, causal within the chunk,
unmasked over whatever context the cache already holds.  Keeping the
math in one place is what makes backend prefill outputs comparable
bit-for-bit — the transformer's old ``_attend_prefill`` is exactly the
``cached_len == 0`` case of :func:`chunked_causal_attention`.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def causal_mask(seq: int) -> np.ndarray:
    """``(seq, seq)`` additive mask: ``-inf`` strictly above the diagonal.

    Built once per attention call and shared by every head — a 32k-token
    prefill allocates one O(seq^2) mask, not O(heads * seq^2) of them.
    The fill goes through a boolean upper-triangle (one byte per element
    of scratch); ``np.triu_indices`` would transiently cost ~2x the mask
    itself in int64 index arrays at that scale.
    """
    mask = np.zeros((seq, seq), dtype=np.float32)
    rows = np.arange(seq)
    mask[rows[:, None] < rows[None, :]] = -np.inf
    return mask


def chunked_causal_attention(
    q: np.ndarray,
    k_ctx: Optional[np.ndarray],
    v_ctx: Optional[np.ndarray],
    k_new: np.ndarray,
    v_new: np.ndarray,
) -> np.ndarray:
    """Exact attention of a prefill chunk over context + itself (causal).

    ``q`` is ``[batch, n, hq, d]`` (post-RoPE); ``k_ctx``/``v_ctx`` are
    the ``[batch, hkv, cached, d]`` context the cache already holds (None
    or zero-length for a fresh prompt); ``k_new``/``v_new`` are the
    chunk's ``[batch, hkv, n, d]``.  Chunk queries see every context
    token plus their own causal prefix.  Returns ``[batch, n, hq, d]``.
    """
    q = np.asarray(q, dtype=np.float32)
    k_new = np.asarray(k_new, dtype=np.float32)
    v_new = np.asarray(v_new, dtype=np.float32)
    batch, n, hq, d = q.shape
    hkv = k_new.shape[1]
    gq = hq // hkv
    cached = 0 if k_ctx is None else k_ctx.shape[2]
    if cached:
        k_all = np.concatenate([np.asarray(k_ctx, np.float32), k_new], axis=2)
        v_all = np.concatenate([np.asarray(v_ctx, np.float32), v_new], axis=2)
        mask = np.concatenate([np.zeros((n, cached), np.float32), causal_mask(n)], axis=1)
    else:
        k_all, v_all = k_new, v_new
        mask = causal_mask(n)
    # (b, n, hq, d) -> (b, hq, n, d) -> grouped (b, hkv, gq, n, d)
    qg = q.transpose(0, 2, 1, 3).reshape(batch, hkv, gq, n, d)
    scale = 1.0 / math.sqrt(d)
    s = np.einsum("bhgqd,bhkd->bhgqk", qg, k_all, optimize=True) * scale
    s += mask
    s -= s.max(axis=-1, keepdims=True)
    p = np.exp(s)
    p /= p.sum(axis=-1, keepdims=True)
    out = np.einsum("bhgqk,bhkd->bhgqd", p, v_all, optimize=True)
    out = out.reshape(batch, hq, n, d)
    return out.transpose(0, 2, 1, 3)
