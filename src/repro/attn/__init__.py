"""Public attention API: one protocol, three backends.

This package is the public face of the cache + engine layer (absorbing
the role :mod:`repro.core.attention` used to play):

- :class:`~repro.attn.protocol.AttentionBackend` — ``prefill(q, kv,
  block_table)`` / ``decode_step(q, block_table)`` over an opaque
  :class:`~repro.attn.protocol.KVCacheHandle`, plus the step-pricing
  surface the serving engine schedules with.
- :class:`~repro.attn.paged.PagedBitBackend` — packed low-bit blocks in
  a shared page pool behind per-sequence block tables (the serving
  cache; preemption frees packed pages).
- :class:`~repro.attn.contiguous.ContiguousBitBackend` — the contiguous
  struct-of-arrays :class:`~repro.core.attention.BitKVCache`, kept as
  the bit-exact reference.
- :class:`~repro.attn.analytical.AnalyticalBackend` — the end-to-end
  latency model, demoted to just another implementation.

:class:`~repro.attn.runner.ModelRunner` (imported lazily to keep the
package free of a model-layer import cycle) drives real tokens through a
:class:`~repro.model.transformer.TinyTransformer` wired to the paged
backend, sharing the serving engine's page table.
"""

from repro.attn.analytical import AnalyticalBackend
from repro.attn.contiguous import ContiguousBitBackend, ContiguousHandle
from repro.attn.paged import (
    PagedBatchHandle,
    PagedBitBackend,
    PagedBitKVCache,
    PagedSeqHandle,
)
from repro.attn.protocol import (
    AttentionBackend,
    KVCacheHandle,
    backend_names,
    get_backend,
    register_backend,
)
from repro.attn.reference import causal_mask, chunked_causal_attention

__all__ = [
    "AnalyticalBackend",
    "AttentionBackend",
    "ContiguousBitBackend",
    "ContiguousHandle",
    "KVCacheHandle",
    "ModelRunner",
    "PagedBatchHandle",
    "PagedBitBackend",
    "PagedBitKVCache",
    "PagedSeqHandle",
    "backend_names",
    "causal_mask",
    "chunked_causal_attention",
    "get_backend",
    "register_backend",
]


def __getattr__(name: str):
    # ModelRunner pulls in the transformer (repro.model), which itself
    # imports this package; resolving it lazily breaks the cycle.
    if name == "ModelRunner":
        from repro.attn.runner import ModelRunner

        return ModelRunner
    raise AttributeError(f"module 'repro.attn' has no attribute {name!r}")
