"""Paged KV-cache management (the paper's "Page" kernel setting).

A vLLM-style substrate: physical KV memory is carved into fixed-size pages,
sequences map logical token positions to (page, offset) through a page
table, and an allocator hands pages out / reclaims them.  BitDecoding and
the fused baselines (QServe, Atom) run on top of this for the
high-throughput serving benchmarks (Figs. 10, 11, 13).
"""

from repro.pages.allocator import EvictionPolicy, OutOfPagesError, PageAllocator
from repro.pages.page_table import PagedSequence, PageTable
from repro.pages.paged_cache import PagedKVStore
from repro.pages.prefix_cache import PrefixCache
from repro.pages.tiers import TieredPageStore, TierObserver

__all__ = [
    "EvictionPolicy",
    "PageAllocator",
    "OutOfPagesError",
    "PageTable",
    "PagedSequence",
    "PagedKVStore",
    "PrefixCache",
    "TieredPageStore",
    "TierObserver",
]
