"""Numeric paged KV storage: rows physically live in pages.

The perf model treats paging as an access-pattern/lookup cost; this module
provides the *numeric* counterpart so paged storage can be validated end to
end: K/V rows are written into fixed-size physical pages through a
:class:`~repro.pages.page_table.PageTable`, and gathering a sequence back
must reproduce the rows in logical order regardless of which physical
pages the allocator handed out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.pages.allocator import PageAllocator
from repro.pages.page_table import PageTable

if TYPE_CHECKING:
    from repro.model.memory import CacheFormat


class PagedKVStore:
    """Paged physical storage for one layer's per-head K/V rows.

    Physical memory is two arrays of shape ``(n_pages, page_size, d)``;
    sequences map logical token indices onto (page, offset) slots via the
    shared page table.  Pages freed by finished sequences are recycled, so
    a long-lived store's physical pages interleave across sequences —
    exactly the situation the gather path must get right.

    The page dtype/width is parameterized rather than hard-coded FP16:
    ``dtype`` picks the numeric row storage (fp16/fp32), and
    ``bits_per_value`` (optionally plus ``meta_bytes_per_token``) sets the
    byte accounting of :attr:`physical_nbytes`.  Sub-byte formats have no
    numpy dtype, so their rows stay numeric in ``dtype`` while the
    footprint is reported at the format's true width — the honest number
    the serving comparisons budget with (the *actual* packed words live
    in :class:`repro.attn.paged.PagedBitKVCache`).  Use
    :meth:`for_format` to derive both from a
    :class:`~repro.model.memory.CacheFormat`.
    """

    def __init__(
        self,
        n_pages: int,
        page_size: int,
        head_dim: int,
        dtype: np.dtype = np.float16,
        bits_per_value: Optional[float] = None,
        meta_bytes_per_token: float = 0.0,
    ):
        if head_dim <= 0:
            raise ValueError("head_dim must be positive")
        if meta_bytes_per_token < 0:
            raise ValueError("meta_bytes_per_token must be non-negative")
        self.allocator = PageAllocator(n_pages)
        self.table = PageTable(self.allocator, page_size=page_size)
        self.head_dim = head_dim
        self.dtype = np.dtype(dtype)
        if bits_per_value is None:
            bits_per_value = self.dtype.itemsize * 8.0
        if bits_per_value <= 0:
            raise ValueError("bits_per_value must be positive")
        self.bits_per_value = float(bits_per_value)
        self.meta_bytes_per_token = float(meta_bytes_per_token)
        self.k_pages = np.zeros((n_pages, page_size, head_dim), dtype=self.dtype)
        self.v_pages = np.zeros((n_pages, page_size, head_dim), dtype=self.dtype)

    @classmethod
    def for_format(
        cls,
        n_pages: int,
        page_size: int,
        head_dim: int,
        fmt: "CacheFormat",
        heads: int = 1,
    ) -> "PagedKVStore":
        """A store whose byte accounting follows a :class:`CacheFormat`.

        ``fmt.meta_bytes_per_token_layer`` spans all ``heads`` KV heads of
        a layer; this store holds one head's rows, so the per-token meta
        share is divided out.
        """
        if heads <= 0:
            raise ValueError("heads must be positive")
        return cls(
            n_pages,
            page_size,
            head_dim,
            dtype=np.float32 if fmt.bits_per_value > 16 else np.float16,
            bits_per_value=fmt.bits_per_value,
            meta_bytes_per_token=fmt.meta_bytes_per_token_layer / heads,
        )

    @property
    def page_size(self) -> int:
        return self.table.page_size

    def add_sequence(self) -> int:
        """Register an empty sequence; returns its id."""
        return self.table.add_sequence(0)

    def fork(self, seq_id: int) -> int:
        """Clone a sequence, sharing every physical page copy-on-write.

        The child reads the parent's rows through the shared pages for
        free; the first append either side makes to a shared page clones
        it via :meth:`_exclusive` before writing.
        """
        return self.table.fork_sequence(seq_id)

    def _exclusive(self, seq_id: int, block_idx: int) -> int:
        """CoW guard: clone a shared page's content before mutating it."""
        page, copied_from = self.table.ensure_exclusive(seq_id, block_idx)
        if copied_from is not None:
            self.k_pages[page] = self.k_pages[copied_from]
            self.v_pages[page] = self.v_pages[copied_from]
        return page

    def append(self, seq_id: int, k_row: np.ndarray, v_row: np.ndarray) -> None:
        """Append one token's K/V rows to a sequence."""
        k_row = np.asarray(k_row, dtype=self.dtype).reshape(self.head_dim)
        v_row = np.asarray(v_row, dtype=self.dtype).reshape(self.head_dim)
        self.table.append_token(seq_id)
        seq = self.table.sequences[seq_id]
        _, offset = seq.lookup(seq.length - 1)
        page = self._exclusive(seq_id, (seq.length - 1) // self.page_size)
        self.k_pages[page, offset] = k_row
        self.v_pages[page, offset] = v_row

    def append_rows(self, seq_id: int, k_rows: np.ndarray, v_rows: np.ndarray) -> None:
        """Append ``n`` tokens' K/V rows (``(n, d)``) in page-sized slabs.

        The chunked-prefill path lands hundreds of rows per scheduler
        quantum; writing them page by page instead of token by token keeps
        the paged store off the per-token Python path the vectorized cache
        just removed.
        """
        k_rows = np.asarray(k_rows, dtype=self.dtype).reshape(-1, self.head_dim)
        v_rows = np.asarray(v_rows, dtype=self.dtype).reshape(-1, self.head_dim)
        if k_rows.shape != v_rows.shape:
            raise ValueError("K and V row batches must share a shape")
        n = k_rows.shape[0]
        seq = self.table.sequences[seq_id]
        start = seq.length
        # All-or-nothing page reservation: an OutOfPagesError leaves the
        # sequence untouched, so a preempting caller can retry the chunk.
        self.table.extend_sequence(seq_id, n)
        written = 0
        while written < n:
            _, offset = seq.lookup(start + written)
            page = self._exclusive(seq_id, (start + written) // self.page_size)
            take = min(self.page_size - offset, n - written)
            self.k_pages[page, offset : offset + take] = k_rows[written : written + take]
            self.v_pages[page, offset : offset + take] = v_rows[written : written + take]
            written += take

    def gather(self, seq_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """All of a sequence's rows in logical order (the kernel's view)."""
        seq = self.table.sequences[seq_id]
        n = seq.length
        k = np.empty((n, self.head_dim), dtype=self.dtype)
        v = np.empty((n, self.head_dim), dtype=self.dtype)
        if n == 0:
            return k, v
        pages = np.asarray(seq.pages)
        full, rem = divmod(n, self.page_size)
        if full:
            k[: full * self.page_size] = self.k_pages[pages[:full]].reshape(-1, self.head_dim)
            v[: full * self.page_size] = self.v_pages[pages[:full]].reshape(-1, self.head_dim)
        if rem:
            k[full * self.page_size :] = self.k_pages[pages[full], :rem]
            v[full * self.page_size :] = self.v_pages[pages[full], :rem]
        return k, v

    def release(self, seq_id: int) -> None:
        """Finish a sequence and recycle its pages."""
        self.table.release_sequence(seq_id)

    @property
    def physical_nbytes(self) -> int:
        """Bytes the pool occupies *in its cache format* (packed + meta).

        For FP16 this equals the numeric arrays' ``nbytes``; for low-bit
        formats it is the packed footprint the format would really cost,
        not the fp16 working arrays' size.
        """
        n_pages, page_size, _ = self.k_pages.shape
        values = 2 * n_pages * page_size * self.head_dim
        meta = n_pages * page_size * self.meta_bytes_per_token
        return int(values * self.bits_per_value / 8.0 + meta)

    @property
    def working_nbytes(self) -> int:
        """Bytes of the numeric working arrays actually allocated here."""
        return self.k_pages.nbytes + self.v_pages.nbytes
