"""Radix-style prefix cache over the paged low-bit KV store.

Maps content keys of page-aligned, *flushed* packed blocks to physical
page ids, vLLM/SGLang-style.  A key identifies the full token prefix up
to and including its block (keys chain: block *i*'s key embeds block
*i-1*'s), so a longest-prefix probe is just successive lookups until the
first miss.

The cache is an :class:`~repro.pages.allocator.EvictionPolicy`: it
*retains* every page it maps, so when such a page's refcount drops to
zero the allocator parks it in the LRU pool instead of recycling it, and
calls :meth:`page_evicted` when it reclaims one under pressure — the
cache trades capacity for hit rate without ever leaking the pool.

Packed low-bit pages are immutable after ``flush_blocks``, which is what
makes cross-sequence sharing safe: only per-sequence FP16 residual slots
mutate, and those are never shared.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.pages.allocator import EvictionPolicy, PageAllocator


class PrefixCache(EvictionPolicy):
    """Content-key -> physical-page index for flushed packed blocks.

    Keys are opaque hashables supplied by the caller; the serving layer
    derives them from the request's token identity (see
    :func:`repro.serving.request.prefix_block_keys`).  First writer wins:
    registering a key that is already mapped keeps the existing page, so
    concurrent producers of the same prefix converge on one physical copy.
    """

    def __init__(self, allocator: PageAllocator):
        self.allocator = allocator
        allocator.register(self)
        self._by_key: Dict[Hashable, int] = {}
        self._by_page: Dict[int, Hashable] = {}
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._by_key)

    def lookup(self, key: Hashable) -> Optional[int]:
        return self._by_key.get(key)

    def match(self, keys: Sequence[Hashable]) -> List[int]:
        """Longest-prefix match: page ids for the leading run of hit keys.

        Stops at the first miss — keys chain, so a miss at block *i*
        implies a miss at every later block.  Pure: the caller (the
        engine) decides whether the probe turns into an admission and
        accounts hits there.
        """
        pages: List[int] = []
        for key in keys:
            page = self._by_key.get(key)
            if page is None:
                break
            pages.append(page)
        return pages

    def insert(self, key: Hashable, page: int) -> int:
        """Register a flushed block's content; returns the canonical page.

        If the key is already mapped (another sequence flushed the same
        prefix first), the existing page wins and the caller keeps using
        its own copy unshared — dedup applies to *future* admissions.
        """
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        old_key = self._by_page.get(page)
        if old_key is not None:
            # The page was recycled into new content without an eviction
            # notice (it went truly free and came back); drop the stale entry.
            del self._by_key[old_key]
        self._by_key[key] = page
        self._by_page[page] = key
        self.insertions += 1
        return page

    # --------------------------------------------------- EvictionPolicy hooks

    def retains(self, page: int) -> bool:
        """Registered pages park at refcount 0 instead of going free."""
        return page in self._by_page

    def page_evicted(self, page: int) -> None:
        """Allocator reclaimed a parked page: unregister its content."""
        key = self._by_page.pop(page, None)
        if key is not None:
            del self._by_key[key]
            self.evictions += 1

    # ----------------------------------------------------------- maintenance

    def forget_page(self, page: int) -> None:
        """Explicitly drop a page's registration (content invalidated)."""
        key = self._by_page.pop(page, None)
        if key is not None:
            del self._by_key[key]
            self.allocator.reconsider(page)
