"""Physical page allocator for the paged KV cache.

Ownership is reference-counted so multiple sequences can map the same
physical page (prefix sharing): ``allocate`` hands out a page with
refcount 1, ``acquire`` adds a reference, ``release`` drops one.  What
happens when a refcount hits zero is governed by registered
:class:`EvictionPolicy` observers: if any policy *retains* the page (its
content still backs something — a prefix-cache entry, say) it parks in an
LRU pool of reclaimable pages instead of returning to the free list.
Parked pages still count as free capacity: ``allocate`` evicts the
least-recently-released parked page (notifying every policy through
:meth:`EvictionPolicy.page_evicted`) when the free list runs dry.

The 0.2-era ``on_evict`` callback + ``mark_cacheable``/``unmark_cacheable``
trio and the exclusive-ownership ``free``/``free_many`` shims were removed
in 0.4; see the README migration table.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List


class OutOfPagesError(RuntimeError):
    """Raised when an allocation cannot be satisfied (the OOM signal the
    serving layer uses to cap batch size)."""


class EvictionPolicy:
    """Observer of a :class:`PageAllocator`'s refcount-0 lifecycle.

    One protocol governs who may keep a reclaimable page alive and who
    must be told when it is reclaimed: the prefix cache retains pages
    whose packed content it still maps, and the tiered page store watches
    releases to keep its residency bookkeeping honest.  All hooks default
    to no-ops so a policy implements only the directions it cares about.
    """

    def retains(self, page: int) -> bool:
        """Should ``page`` park in the reclaimable pool at refcount 0?"""
        return False

    def page_released(self, page: int) -> None:
        """``page``'s refcount hit zero (it parked or went truly free)."""

    def page_evicted(self, page: int) -> None:
        """The allocator reclaimed parked ``page`` under pressure: any
        registration keeping it alive is now stale and must be dropped."""


class PageAllocator:
    """Fixed pool of physical pages with refcounted O(1) allocate/release.

    Pages are identified by integer ids in ``[0, n_pages)``.  The allocator
    tracks the free list, per-page refcounts, and the LRU pool of parked
    refcount-0 pages explicitly so tests can assert conservation invariants
    (no double allocation, no negative refcount, used + reclaimable == total).
    """

    def __init__(self, n_pages: int):
        if n_pages <= 0:
            raise ValueError("n_pages must be positive")
        self.n_pages = n_pages
        self._free: List[int] = list(range(n_pages - 1, -1, -1))
        self._refs: Dict[int, int] = {}
        # refcount-0 pages some policy retains (prefix cache content);
        # insertion order == least-recently-released first.
        self._cached: "OrderedDict[int, None]" = OrderedDict()
        self._policies: List[EvictionPolicy] = []
        self.evictions = 0

    # ------------------------------------------------------------- policies

    def register(self, policy: EvictionPolicy) -> None:
        """Attach an eviction policy / lifecycle observer."""
        if policy in self._policies:
            raise ValueError("policy is already registered")
        self._policies.append(policy)

    def unregister(self, policy: EvictionPolicy) -> None:
        self._policies.remove(policy)

    def _retained(self, page: int) -> bool:
        return any(policy.retains(page) for policy in self._policies)

    # ------------------------------------------------------------ accounting

    @property
    def free_pages(self) -> int:
        """Reclaimable pages: truly free plus parked-but-unreferenced."""
        return len(self._free) + len(self._cached)

    @property
    def used_pages(self) -> int:
        return len(self._refs)

    @property
    def cached_pages(self) -> int:
        return len(self._cached)

    def refcount(self, page: int) -> int:
        return self._refs.get(page, 0)

    def is_cached(self, page: int) -> bool:
        """True for a refcount-0 page parked in the reclaimable LRU pool."""
        return page in self._cached

    # ------------------------------------------------------------- lifecycle

    def _evict_one(self) -> int:
        page, _ = self._cached.popitem(last=False)  # least recently released
        self.evictions += 1
        for policy in self._policies:
            policy.page_evicted(page)
        return page

    def allocate(self) -> int:
        """Take one page (refcount 1); raises :class:`OutOfPagesError` when
        exhausted.  Prefers the free list; falls back to evicting the LRU
        parked page."""
        if self._free:
            page = self._free.pop()
        elif self._cached:
            page = self._evict_one()
        else:
            raise OutOfPagesError(f"all {self.n_pages} pages in use; cannot grow the KV cache")
        self._refs[page] = 1
        return page

    def allocate_many(self, count: int) -> List[int]:
        """Take ``count`` pages atomically (all or nothing)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.free_pages:
            raise OutOfPagesError(f"requested {count} pages but only {self.free_pages} free")
        return [self.allocate() for _ in range(count)]

    def acquire(self, page: int) -> None:
        """Add a reference to a page.

        The page must be live (refcount > 0) or parked in the reclaimable
        pool — acquiring a parked page resurrects it without touching its
        content, which is exactly the prefix-cache hit path.
        """
        if page in self._refs:
            self._refs[page] += 1
            return
        if page in self._cached:
            del self._cached[page]
            self._refs[page] = 1
            return
        raise ValueError(f"page {page} is not allocated or cached")

    def release(self, page: int) -> None:
        """Drop one reference; at zero the page becomes reclaimable."""
        refs = self._refs.get(page)
        if refs is None:
            raise ValueError(f"page {page} is not allocated")
        if refs > 1:
            self._refs[page] = refs - 1
            return
        del self._refs[page]
        if self._retained(page):
            self._cached[page] = None  # most recently released -> end of LRU
        else:
            self._free.append(page)
        for policy in self._policies:
            policy.page_released(page)

    def release_many(self, pages: List[int]) -> None:
        for page in pages:
            self.release(page)

    def reconsider(self, page: int) -> None:
        """Re-evaluate a parked page after a policy dropped its claim.

        A parked page no policy retains anymore moves to the free list.
        This is the explicit-unregistration direction (e.g.
        :meth:`PrefixCache.forget_page <repro.pages.prefix_cache.PrefixCache.forget_page>`),
        so it does *not* fire :meth:`EvictionPolicy.page_evicted` — the
        caller already knows the content registration is gone.
        """
        if page in self._cached and not self._retained(page):
            del self._cached[page]
            self._free.append(page)
