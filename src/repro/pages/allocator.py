"""Physical page allocator for the paged KV cache.

Ownership is reference-counted so multiple sequences can map the same
physical page (prefix sharing): ``allocate`` hands out a page with
refcount 1, ``acquire`` adds a reference, ``release`` drops one.  A page
whose refcount hits zero either returns to the free list or — if it was
marked *cacheable* (it backs a registered prefix-cache entry) — parks in
an LRU pool of reclaimable pages.  Cached pages still count as free
capacity: ``allocate`` evicts the least-recently-released cached page
(notifying ``on_evict`` so the prefix cache can unregister it) when the
free list runs dry.  The legacy exclusive-ownership ``free``/``free_many``
calls survive as deprecated shims that require refcount == 1.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Set

_FREE_DEPRECATION = (
    "PageAllocator.free/free_many are deprecated and will be removed in repro 0.4; "
    "pages are reference-counted now -- use release/release_many instead"
)


class OutOfPagesError(RuntimeError):
    """Raised when an allocation cannot be satisfied (the OOM signal the
    serving layer uses to cap batch size)."""


class PageAllocator:
    """Fixed pool of physical pages with refcounted O(1) allocate/release.

    Pages are identified by integer ids in ``[0, n_pages)``.  The allocator
    tracks the free list, per-page refcounts, and the LRU pool of cached
    refcount-0 pages explicitly so tests can assert conservation invariants
    (no double allocation, no negative refcount, used + reclaimable == total).
    """

    def __init__(self, n_pages: int, on_evict: Optional[Callable[[int], None]] = None):
        if n_pages <= 0:
            raise ValueError("n_pages must be positive")
        self.n_pages = n_pages
        self._free: List[int] = list(range(n_pages - 1, -1, -1))
        self._refs: Dict[int, int] = {}
        # refcount-0 pages whose content is still registered somewhere
        # (prefix cache); insertion order == least-recently-released first.
        self._cached: "OrderedDict[int, None]" = OrderedDict()
        self._cacheable: Set[int] = set()
        self.on_evict = on_evict
        self.evictions = 0

    @property
    def free_pages(self) -> int:
        """Reclaimable pages: truly free plus cached-but-unreferenced."""
        return len(self._free) + len(self._cached)

    @property
    def used_pages(self) -> int:
        return len(self._refs)

    @property
    def cached_pages(self) -> int:
        return len(self._cached)

    def refcount(self, page: int) -> int:
        return self._refs.get(page, 0)

    def _evict_one(self) -> int:
        page, _ = self._cached.popitem(last=False)  # least recently released
        self._cacheable.discard(page)
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(page)
        return page

    def allocate(self) -> int:
        """Take one page (refcount 1); raises :class:`OutOfPagesError` when
        exhausted.  Prefers the free list; falls back to evicting the LRU
        cached page."""
        if self._free:
            page = self._free.pop()
        elif self._cached:
            page = self._evict_one()
        else:
            raise OutOfPagesError(f"all {self.n_pages} pages in use; cannot grow the KV cache")
        self._refs[page] = 1
        return page

    def allocate_many(self, count: int) -> List[int]:
        """Take ``count`` pages atomically (all or nothing)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > self.free_pages:
            raise OutOfPagesError(f"requested {count} pages but only {self.free_pages} free")
        return [self.allocate() for _ in range(count)]

    def acquire(self, page: int) -> None:
        """Add a reference to a page.

        The page must be live (refcount > 0) or parked in the cached pool —
        acquiring a cached page resurrects it without touching its content,
        which is exactly the prefix-cache hit path.
        """
        if page in self._refs:
            self._refs[page] += 1
            return
        if page in self._cached:
            del self._cached[page]
            self._refs[page] = 1
            return
        raise ValueError(f"page {page} is not allocated or cached")

    def release(self, page: int) -> None:
        """Drop one reference; at zero the page becomes reclaimable."""
        refs = self._refs.get(page)
        if refs is None:
            raise ValueError(f"page {page} is not allocated")
        if refs > 1:
            self._refs[page] = refs - 1
            return
        del self._refs[page]
        if page in self._cacheable:
            self._cached[page] = None  # most recently released -> end of LRU
        else:
            self._free.append(page)

    def release_many(self, pages: List[int]) -> None:
        for page in pages:
            self.release(page)

    def mark_cacheable(self, page: int) -> None:
        """Tag a live page as backing registered cached content: when its
        refcount drops to zero it parks in the LRU pool instead of being
        recycled immediately."""
        if page not in self._refs and page not in self._cached:
            raise ValueError(f"page {page} is not allocated")
        self._cacheable.add(page)

    def unmark_cacheable(self, page: int) -> None:
        """Drop the cacheable tag (the content registration went away).

        A page already parked in the cached pool moves to the free list.
        Does not fire ``on_evict`` — this is the direction the eviction
        callback itself uses to unregister content.
        """
        self._cacheable.discard(page)
        if page in self._cached:
            del self._cached[page]
            self._free.append(page)

    # -- deprecated exclusive-ownership API ---------------------------------

    def free(self, page: int) -> None:
        """Deprecated: exclusive-ownership free. Use :meth:`release`."""
        warnings.warn(_FREE_DEPRECATION, DeprecationWarning, stacklevel=2)
        self._free_exclusive(page)

    def free_many(self, pages: List[int]) -> None:
        """Deprecated: exclusive-ownership free. Use :meth:`release_many`."""
        warnings.warn(_FREE_DEPRECATION, DeprecationWarning, stacklevel=2)
        for page in pages:
            self._free_exclusive(page)

    def _free_exclusive(self, page: int) -> None:
        refs = self._refs.get(page)
        if refs is None:
            raise ValueError(f"page {page} is not allocated")
        if refs != 1:
            raise ValueError(
                f"page {page} has refcount {refs}; free() requires exclusive "
                "ownership -- use release()"
            )
        self.release(page)
