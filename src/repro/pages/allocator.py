"""Physical page allocator for the paged KV cache."""

from __future__ import annotations

from typing import List, Set


class OutOfPagesError(RuntimeError):
    """Raised when an allocation cannot be satisfied (the OOM signal the
    serving layer uses to cap batch size)."""


class PageAllocator:
    """Fixed pool of physical pages with O(1) allocate/free.

    Pages are identified by integer ids in ``[0, n_pages)``.  The allocator
    tracks the free list explicitly so tests can assert conservation
    invariants (no double allocation, no double free, free+used == total).
    """

    def __init__(self, n_pages: int):
        if n_pages <= 0:
            raise ValueError("n_pages must be positive")
        self.n_pages = n_pages
        self._free: List[int] = list(range(n_pages - 1, -1, -1))
        self._used: Set[int] = set()

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return len(self._used)

    def allocate(self) -> int:
        """Take one page; raises :class:`OutOfPagesError` when exhausted."""
        if not self._free:
            raise OutOfPagesError(f"all {self.n_pages} pages in use; cannot grow the KV cache")
        page = self._free.pop()
        self._used.add(page)
        return page

    def allocate_many(self, count: int) -> List[int]:
        """Take ``count`` pages atomically (all or nothing)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > len(self._free):
            raise OutOfPagesError(f"requested {count} pages but only {len(self._free)} free")
        return [self.allocate() for _ in range(count)]

    def free(self, page: int) -> None:
        """Return a page to the pool; double frees raise."""
        if page not in self._used:
            raise ValueError(f"page {page} is not allocated")
        self._used.remove(page)
        self._free.append(page)

    def free_many(self, pages: List[int]) -> None:
        for page in pages:
            self.free(page)
