"""Tiered physical page store: device pages backed by host (and disk) tiers.

The allocator's page-id space stays *logical* — block tables, the prefix
cache and the serving scheduler keep naming pages by id exactly as in a
single-tier pool.  This module adds the physical dimension: every page id
is bound to a **frame**, an index into the pool arrays the numerics
actually read, and frames are partitioned into a ``device`` range of
fixed capacity, a larger ``host`` range, and an analytically modeled
``disk`` range.  Migration moves page *contents* between frames (a
bijection is maintained: one page per frame, one frame per page), so a
page can be demoted to host and promoted back **bit-exactly** — the
contract the swap-preemption parity suite pins down.

Every migration is priced by a
:class:`~repro.model.memory.MemoryTierModel` (PCIe for device <-> host,
NVMe for host <-> disk) and lands in one of two per-step buckets:

- ``prefetch`` — transfers the scheduler issued ahead of the compute
  that needs them (the next sequence's pages fetched during the current
  sequence's decode tile walk).  The engine overlaps this bucket with
  the step's compute: only ``max(0, prefetch - compute)`` surfaces as
  extra step time.
- ``fault`` — the measured fallback: a page accessed while non-resident
  is fetched synchronously, and the full transfer time is recorded as
  stall.

Physical content lives in observers (each per-layer
:class:`~repro.attn.paged.PagedBitKVCache` registers one): the store
tells them to ``copy_frame``/``exchange_frames`` and they move the packed
words and quantization metadata of every layer.  With no observers the
store is purely analytical — the same scheduling and pricing, no bytes.

The store is also an :class:`~repro.pages.allocator.EvictionPolicy`
observer on the allocator, which is how it learns that a page's content
died (released to the free list or evicted from the parked pool): dead
pages become *garbage* frames, the free lunch of victim selection — a
promotion may overwrite a garbage frame without paying to save its
contents.

**Faults and integrity.**  Construct the store with a
:class:`~repro.faults.plan.FaultPlan` and every priced leg consults it:
transient failures charge retry-with-backoff time straight into the
fault (stall) bucket, latency spikes multiply the leg, permanent
failures mark the page *lost*, and corruption events taint the payload
in flight (observers get :meth:`TierObserver.corrupt_frame` so executed
runs damage real bytes).  With ``integrity`` on, a live page leaving the
device tier records a checksum (:meth:`TierObserver.frame_checksum`
combined across observers) that is verified when the content next lands
on device; mismatches — and, in analytical runs with no bytes to hash,
plan-tainted pages — are marked *corrupt*.  Lost and corrupt pages queue
in a bad-page ledger the engine drains (:meth:`drain_bad_pages`) to heal
the affected sequences before any numerics read them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.memory import MemoryTierModel
from repro.pages.allocator import EvictionPolicy, PageAllocator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> pages)
    from repro.faults.plan import FaultPlan


class TierObserver:
    """Physical backing store hook: moves page content between frames."""

    def copy_frame(self, src: int, dst: int) -> None:
        """Overwrite frame ``dst`` with frame ``src``'s content."""
        raise NotImplementedError

    def exchange_frames(self, a: int, b: int) -> None:
        """Swap the contents of two frames (both survive, bit-exactly)."""
        raise NotImplementedError

    def frame_checksum(self, frame: int) -> int:
        """Checksum of frame ``frame``'s content (uint32 range)."""
        raise NotImplementedError

    def corrupt_frame(self, frame: int, salt: int) -> None:
        """Deterministically damage frame ``frame``'s content (never a no-op)."""
        raise NotImplementedError


class TieredPageStore(EvictionPolicy):
    """Page-id -> frame bijection over device / host / disk frame ranges.

    ``page_nbytes`` is the physical size of one page across every layer
    (the same accounting :func:`repro.model.memory.page_bytes` gives the
    serving engine), so migration pricing and the byte counters agree
    with the rest of the memory model.
    """

    def __init__(
        self,
        allocator: PageAllocator,
        device_pages: int,
        host_pages: int,
        disk_pages: int = 0,
        page_nbytes: float = 0.0,
        model: Optional[MemoryTierModel] = None,
        faults: Optional["FaultPlan"] = None,
        integrity: Optional[bool] = None,
    ):
        if device_pages <= 0 or host_pages < 0 or disk_pages < 0:
            raise ValueError("device_pages must be positive; host/disk non-negative")
        total = device_pages + host_pages + disk_pages
        if allocator.n_pages != total:
            raise ValueError(
                f"allocator pool ({allocator.n_pages} pages) must equal the "
                f"tier total ({device_pages} device + {host_pages} host + "
                f"{disk_pages} disk = {total})"
            )
        self.allocator = allocator
        self.device_pages = device_pages
        self.host_pages = host_pages
        self.disk_pages = disk_pages
        self.n_pages = total
        self.page_nbytes = float(page_nbytes)
        self.model = model if model is not None else MemoryTierModel()
        # Identity bijection at birth: page i occupies frame i.
        self._frame_of: List[int] = list(range(total))
        self._page_at: List[int] = list(range(total))
        self._observers: List[TierObserver] = []
        # Device-resident pages in recency order (oldest first).
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self._pins: set = set()
        self._step_prefetch_ms = 0.0
        self._step_fault_ms = 0.0
        # Cumulative traffic/stall counters the serving report surfaces.
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.disk_bytes = 0
        self.faults = 0
        self.prefetched_pages = 0
        self.demoted_pages = 0
        self.fault_ms_total = 0.0
        self.prefetch_ms_total = 0.0
        # Fault injection + integrity state (all dormant when plan is None
        # and integrity is off — the clean path pays only two None checks).
        self.fault_plan = faults
        self.integrity = bool(integrity) if integrity is not None else faults is not None
        self._checksums: Dict[int, int] = {}  # page -> digest when its content left device
        self._tainted: set = set()  # pages the plan corrupted in flight
        self._bad_pages: Dict[int, str] = {}  # page -> "lost" | "corrupt"
        self.transfer_retries = 0
        self.retry_backoff_ms_total = 0.0
        self.retry_stall_ms_total = 0.0
        self.lost_pages = 0
        self.injected_corruptions = 0
        self.checksum_failures = 0
        self.spiked_transfers = 0
        allocator.register(self)

    # ------------------------------------------------------------- geometry

    def add_observer(self, observer: TierObserver) -> None:
        self._observers.append(observer)

    def tier_of(self, page: int) -> str:
        frame = self._frame_of[page]
        if frame < self.device_pages:
            return "device"
        if frame < self.device_pages + self.host_pages:
            return "host"
        return "disk"

    def _tier_of_frame(self, frame: int) -> str:
        if frame < self.device_pages:
            return "device"
        if frame < self.device_pages + self.host_pages:
            return "host"
        return "disk"

    def frame_of(self, page: int) -> int:
        return self._frame_of[page]

    def frames_of(self, pages: Sequence[int]) -> np.ndarray:
        frame_of = self._frame_of
        return np.asarray([frame_of[p] for p in pages], dtype=np.intp)

    def resident(self, page: int) -> bool:
        return self._frame_of[page] < self.device_pages

    @property
    def resident_live_pages(self) -> int:
        """Device frames holding content that must survive (ref'd or parked)."""
        alloc = self.allocator
        return sum(
            1
            for frame in range(self.device_pages)
            if alloc.refcount(self._page_at[frame]) > 0
            or alloc.is_cached(self._page_at[frame])
        )

    # ------------------------------------------------------------ step state

    def start_step(self) -> None:
        """Reset the per-step transfer buckets and prefetch pins."""
        self._step_prefetch_ms = 0.0
        self._step_fault_ms = 0.0
        self._pins.clear()

    @property
    def step_prefetch_ms(self) -> float:
        """Transfer time issued ahead of compute this step (overlappable)."""
        return self._step_prefetch_ms

    @property
    def step_fault_ms(self) -> float:
        """Synchronous fault time this step (pure stall)."""
        return self._step_fault_ms

    def pin(self, pages: Iterable[int]) -> None:
        """Protect pages from victim selection until the step ends."""
        self._pins.update(pages)

    # ------------------------------------------------------------- migration

    def _garbage(self, page: int) -> bool:
        """Dead content: unreferenced and not parked for any policy."""
        return self.allocator.refcount(page) == 0 and not self.allocator.is_cached(page)

    def _leg(self, page: int, src_tier: str, dst_tier: str, live: bool) -> Tuple[float, bool]:
        """Price one leg transfer of ``page``'s content under the fault plan.

        Returns ``(ms, corrupt)``: the overlappable milliseconds of the
        successful attempt (zero when the content is lost) and whether the
        payload was corrupted in flight.  Retry attempts and backoff are
        booked directly as synchronous stall — a failed DMA always blocks
        the step, even when the transfer itself was issued as prefetch.
        """
        base = self.model.transfer_ms(self.page_nbytes, src_tier, dst_tier)
        plan = self.fault_plan
        if plan is None:
            self._account_bytes(src_tier, dst_tier)
            return base, False
        out = plan.transfer(f"{src_tier}→{dst_tier}")
        if out.failures:
            stall = 0.0
            for attempt in range(out.failures):
                backoff = plan.backoff_ms(attempt)
                self.retry_backoff_ms_total += backoff
                stall += base + backoff
            self.transfer_retries += out.failures
            self.retry_stall_ms_total += stall
            self._step_fault_ms += stall
            self.fault_ms_total += stall
        if out.lost:
            self.lost_pages += 1
            if live:
                self._mark_bad(page, "lost")
            return 0.0, False
        if out.spike != 1.0:
            self.spiked_transfers += 1
        self._account_bytes(src_tier, dst_tier)
        if out.corrupt and live:
            self.injected_corruptions += 1
            self._tainted.add(page)
            return base * out.spike, True
        return base * out.spike, False

    def _move(self, page: int, target_frame: int) -> float:
        """Bind ``page`` to ``target_frame``, displacing its current holder.

        Returns the priced transfer milliseconds: the page's own leg plus,
        when the displaced page's content is still live, the leg saving it
        into the vacated frame.  Garbage holders are simply overwritten.

        Under a fault plan each leg may retry, spike, lose its payload, or
        corrupt it; the bijection always completes (the engine heals lost
        and corrupt pages before anything reads them).  With integrity on,
        live content leaving the device tier records a checksum, and
        content arriving on device is verified against it.
        """
        src_frame = self._frame_of[page]
        if src_frame == target_frame:
            return 0.0
        displaced = self._page_at[target_frame]
        src_tier = self._tier_of_frame(src_frame)
        dst_tier = self._tier_of_frame(target_frame)
        displaced_garbage = self._garbage(displaced)
        page_live = not self._garbage(page)
        if self.integrity:
            if page_live and src_tier == "device":
                self._record_checksum(page, src_frame)
            if not displaced_garbage and dst_tier == "device":
                self._record_checksum(displaced, target_frame)
        ms, page_corrupt = self._leg(page, src_tier, dst_tier, page_live)
        displaced_corrupt = False
        if displaced_garbage:
            for obs in self._observers:
                obs.copy_frame(src_frame, target_frame)
        else:
            leg_ms, displaced_corrupt = self._leg(displaced, dst_tier, src_tier, True)
            ms += leg_ms
            for obs in self._observers:
                obs.exchange_frames(src_frame, target_frame)
        self._frame_of[page], self._frame_of[displaced] = target_frame, src_frame
        self._page_at[target_frame], self._page_at[src_frame] = page, displaced
        if self._frame_of[displaced] >= self.device_pages:
            self._lru.pop(displaced, None)
        if page_corrupt:
            self._apply_corruption(page)
        if displaced_corrupt:
            self._apply_corruption(displaced)
        if self.integrity:
            if dst_tier == "device" and page_live:
                self._verify_on_device(page)
            if src_tier == "device" and not displaced_garbage:
                self._verify_on_device(displaced)
        return ms

    # ------------------------------------------------------ integrity/faults

    def _mark_bad(self, page: int, kind: str) -> None:
        self._bad_pages.setdefault(page, kind)

    def _combined_checksum(self, frame: int) -> int:
        digest = 0
        for i, obs in enumerate(self._observers):
            digest ^= (obs.frame_checksum(frame) + 0x9E3779B9 * (i + 1)) & 0xFFFFFFFF
        return digest

    def _record_checksum(self, page: int, frame: int) -> None:
        """Snapshot a live page's digest as its content leaves device."""
        if self._observers:
            self._checksums[page] = self._combined_checksum(frame)

    def _apply_corruption(self, page: int) -> None:
        """Physically damage a plan-corrupted page (executed runs only)."""
        frame = self._frame_of[page]
        salt = (page * 0x9E3779B1 + self.injected_corruptions) & 0xFFFFFFFF
        for obs in self._observers:
            obs.corrupt_frame(frame, salt)

    def _verify_on_device(self, page: int) -> None:
        """Check content that just landed on device against its exit digest.

        Detection is taint-driven (identical in analytical and executed
        runs: both plans drew the same corruption events) and additionally
        byte-driven when observers exist — a frame damaged outside the
        plan is caught by the digest alone.
        """
        expected = self._checksums.pop(page, None)
        corrupt = page in self._tainted
        self._tainted.discard(page)
        if expected is not None and self._observers:
            if self._combined_checksum(self._frame_of[page]) != expected:
                corrupt = True
        if corrupt:
            self.checksum_failures += 1
            self._mark_bad(page, "corrupt")

    @property
    def has_bad_pages(self) -> bool:
        return bool(self._bad_pages)

    def drain_bad_pages(self) -> Dict[int, str]:
        """Hand the lost/corrupt ledger to the engine for healing."""
        bad, self._bad_pages = self._bad_pages, {}
        return bad

    def _account_bytes(self, src: str, dst: str) -> None:
        nbytes = int(self.page_nbytes)
        if (src, dst) == ("host", "device") or (src, dst) == ("disk", "device"):
            self.h2d_bytes += nbytes
        elif (src, dst) == ("device", "host") or (src, dst) == ("device", "disk"):
            self.d2h_bytes += nbytes
        if "disk" in (src, dst):
            self.disk_bytes += nbytes

    def _pick_device_victim(self) -> int:
        """Device frame a promotion may take over, cheapest claim first:
        garbage content, then parked (prefix-cache) pages, then the
        least-recently-used unpinned live page, then — pressure beyond the
        scheduler's working-set guarantees — the LRU pinned page."""
        parked = None
        for frame in range(self.device_pages):
            page = self._page_at[frame]
            if self._garbage(page):
                return frame
            if parked is None and self.allocator.is_cached(page) and page not in self._pins:
                parked = frame
        if parked is not None:
            return parked
        for page in self._lru:
            if page not in self._pins and self.resident(page):
                return self._frame_of[page]
        for frame in range(self.device_pages):
            if self._page_at[frame] not in self._pins:
                return frame
        for page in self._lru:
            if self.resident(page):
                return self._frame_of[page]
        return self.device_pages - 1  # everything pinned: take the last frame

    def _pick_eviction_frame(self, exclude: frozenset = frozenset()) -> int:
        """Non-device frame a demotion may take over: garbage first (host
        before disk, mirroring the transfer cost order), then parked, then
        any live holder (which rides the exchange back to device).
        ``exclude`` keeps a batch demotion from re-promoting pages it
        itself just moved out."""
        start, total = self.device_pages, self.n_pages
        parked = None
        live = None
        any_frame = None
        for frame in range(start, total):
            page = self._page_at[frame]
            if any_frame is None:
                any_frame = frame
            if page in exclude:
                continue
            if self._garbage(page):
                return frame
            if parked is None and self.allocator.is_cached(page):
                parked = frame
            if live is None:
                live = frame
        if parked is not None:
            return parked
        if live is not None:
            return live
        if any_frame is not None:
            return any_frame
        raise RuntimeError("tiered store has no host/disk frames to demote into")

    def touch(self, pages: Sequence[int]) -> None:
        """Record device-resident pages as just-used (LRU maintenance)."""
        for page in pages:
            if self.resident(page):
                self._lru[page] = None
                self._lru.move_to_end(page)

    def ensure_resident(self, pages: Sequence[int], prefetch: bool = False) -> float:
        """Promote every non-resident page; returns the priced milliseconds.

        ``prefetch=True`` books the transfers as issued ahead of compute
        (the engine overlaps them with the step's kernel time);
        ``prefetch=False`` is the synchronous fault fallback and books
        pure stall.  Either way the pages end up pinned for the step so a
        later promotion in the same step cannot victimize them.
        """
        self.pin(pages)
        ms = 0.0
        n_moved = 0
        for page in pages:
            if self.resident(page):
                continue
            ms += self._move(page, self._pick_device_victim())
            n_moved += 1
        self.touch(pages)
        if n_moved:
            if prefetch:
                self._step_prefetch_ms += ms
                self.prefetch_ms_total += ms
                self.prefetched_pages += n_moved
            else:
                self._step_fault_ms += ms
                self.fault_ms_total += ms
                self.faults += n_moved
        return ms

    def absorb_prefetch(self, ms: float) -> None:
        """Mark ``ms`` of this step's prefetch bucket as already overlapped
        by compute the engine charged out-of-band (a whole-prompt prefill
        pass), so the step's closing overlap math cannot charge it twice."""
        self._step_prefetch_ms = max(0.0, self._step_prefetch_ms - ms)

    def fault_in(self, pages: Sequence[int], prefetch: bool = False) -> float:
        """Measured-path residency fallback for readers below the scheduler.

        Unlike :meth:`ensure_resident` this is a strict no-op when every
        page is already resident — no pins recorded, no LRU recency — so
        executed numerics re-checking pages the scheduler already promoted
        cannot perturb victim selection.  That is what keeps an analytical
        and an executed chaos run drawing identical fault outcomes: the
        engine issues every schedule-level transfer itself, and this
        fallback only ever acts on direct cache use outside an engine.
        """
        missing = [page for page in pages if not self.resident(page)]
        if not missing:
            return 0.0
        self.pin(missing)
        ms = 0.0
        for page in missing:
            ms += self._move(page, self._pick_device_victim())
        self.touch(missing)
        if prefetch:
            self._step_prefetch_ms += ms
            self.prefetch_ms_total += ms
            self.prefetched_pages += len(missing)
        else:
            self._step_fault_ms += ms
            self.fault_ms_total += ms
            self.faults += len(missing)
        return ms

    def demote(self, pages: Sequence[int]) -> float:
        """Swap pages out of the device tier (preemption's cheap path).

        Transfers are booked as overlappable (the DMA out rides alongside
        the step's compute).  Returns the priced milliseconds.
        """
        ms = 0.0
        n_moved = 0
        exclude = frozenset(pages)
        for page in pages:
            if not self.resident(page):
                continue
            ms += self._move(page, self._pick_eviction_frame(exclude))
            self._lru.pop(page, None)
            self._pins.discard(page)
            n_moved += 1
        if n_moved:
            self._step_prefetch_ms += ms
            self.prefetch_ms_total += ms
            self.demoted_pages += n_moved
        return ms

    # --------------------------------------------------- EvictionPolicy hooks

    def page_released(self, page: int) -> None:
        """A page's refcount hit zero; unless parked, its frame is garbage."""
        if not self.allocator.is_cached(page):
            self._lru.pop(page, None)
            self._pins.discard(page)
            self._forget_content(page)

    def page_evicted(self, page: int) -> None:
        """A parked page was reclaimed: its old content is garbage now."""
        self._lru.pop(page, None)
        self._pins.discard(page)
        self._forget_content(page)

    def _forget_content(self, page: int) -> None:
        """Dead content needs no digest, carries no taint, heals nothing."""
        self._checksums.pop(page, None)
        self._tainted.discard(page)
        self._bad_pages.pop(page, None)
