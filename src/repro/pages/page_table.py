"""Logical-to-physical page tables for paged sequences.

Block tables may point multiple sequences at one physical page (prefix
sharing); the allocator's refcounts keep shared pages alive until the
last mapping drops.  Mutation of a shared page goes through
:meth:`PageTable.ensure_exclusive` — copy-on-write at page granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.pages.allocator import PageAllocator


@dataclass
class PagedSequence:
    """One sequence's page table: logical token index -> (page, offset)."""

    page_size: int
    pages: List[int] = field(default_factory=list)
    length: int = 0

    def lookup(self, token_idx: int) -> Tuple[int, int]:
        """Physical (page_id, offset) of a logical token index."""
        if not 0 <= token_idx < self.length:
            raise IndexError(f"token {token_idx} out of range [0, {self.length})")
        return self.pages[token_idx // self.page_size], token_idx % self.page_size

    @property
    def capacity(self) -> int:
        return len(self.pages) * self.page_size

    def needs_page(self) -> bool:
        return self.length == self.capacity


class PageTable:
    """Page tables for a batch of sequences over one shared allocator.

    Bytes-per-token accounting is left to callers (it depends on the cache's
    bit width); this class manages only the page geometry.
    """

    def __init__(self, allocator: PageAllocator, page_size: int = 64):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.allocator = allocator
        self.page_size = page_size
        self.sequences: List[PagedSequence] = []
        self._free_ids: List[int] = []

    def add_sequence(
        self, initial_length: int = 0, shared_pages: Optional[Sequence[int]] = None
    ) -> int:
        """Register a sequence, allocating pages for an initial context.

        ``shared_pages`` maps the sequence's leading blocks onto existing
        physical pages (a prefix-cache hit): those pages are ``acquire``-d
        rather than allocated, and only the remainder of the context draws
        fresh pages.  The acquisitions happen first so a hit page parked in
        the allocator's cached pool cannot be evicted to satisfy the fresh
        part of the very same admission.

        Returns the sequence id; ids of released sequences are recycled, so
        a long-lived table stays bounded by peak concurrency rather than
        total admissions.  Raises ``OutOfPagesError`` (leaving no partial
        allocation behind) when the pool cannot hold the context.
        """
        shared = list(shared_pages) if shared_pages else []
        n_pages = -(-initial_length // self.page_size) if initial_length else 0
        if len(shared) > n_pages:
            raise ValueError(
                f"{len(shared)} shared pages exceed the {n_pages} pages an "
                f"initial context of {initial_length} tokens occupies"
            )
        for i, page in enumerate(shared):
            try:
                self.allocator.acquire(page)
            except ValueError:
                for held in shared[:i]:
                    self.allocator.release(held)
                raise
        try:
            fresh = self.allocator.allocate_many(n_pages - len(shared))
        except Exception:
            for held in shared:
                self.allocator.release(held)
            raise
        seq = PagedSequence(
            page_size=self.page_size, pages=shared + fresh, length=initial_length
        )
        if self._free_ids:
            seq_id = self._free_ids.pop()
            self.sequences[seq_id] = seq
            return seq_id
        self.sequences.append(seq)
        return len(self.sequences) - 1

    def append_token(self, seq_id: int) -> None:
        """Grow a sequence by one token, allocating a page on boundaries."""
        seq = self.sequences[seq_id]
        if seq.needs_page():
            seq.pages.append(self.allocator.allocate())
        seq.length += 1

    def extend_sequence(self, seq_id: int, n_tokens: int) -> None:
        """Grow a sequence by ``n_tokens`` (one prefill chunk) atomically.

        Every page the extension needs is taken in one all-or-nothing
        allocation, so an ``OutOfPagesError`` leaves the sequence exactly
        as it was — a preempting caller can pick a victim and retry, and a
        mid-prefill preemption releases precisely the pages reserved so
        far, never pages from a half-applied chunk.
        """
        if n_tokens < 0:
            raise ValueError("n_tokens must be non-negative")
        if seq_id in self._free_ids:
            raise ValueError(f"sequence {seq_id} is released")
        seq = self.sequences[seq_id]
        target = seq.length + n_tokens
        n_pages = -(-target // self.page_size) - len(seq.pages)
        if n_pages > 0:
            seq.pages.extend(self.allocator.allocate_many(n_pages))
        seq.length = target

    def ensure_exclusive(self, seq_id: int, block_idx: int) -> Tuple[int, Optional[int]]:
        """Copy-on-write: make ``block_idx`` of a sequence exclusively owned.

        If the backing page is shared (refcount > 1), a fresh page is
        allocated, swapped into this sequence's block table, and the old
        reference dropped.  Returns ``(page_id, copied_from)`` where
        ``copied_from`` is the old page id when a clone happened (the
        physical store must copy page *content* from it — this class only
        manages the mapping) and ``None`` when the page was already ours.
        """
        seq = self.sequences[seq_id]
        page = seq.pages[block_idx]
        if self.allocator.refcount(page) <= 1:
            return page, None
        fresh = self.allocator.allocate()
        seq.pages[block_idx] = fresh
        self.allocator.release(page)
        return fresh, page

    def fork_sequence(self, seq_id: int) -> int:
        """Clone a sequence's mapping, sharing every backing page.

        The child acquires a reference on each of the parent's pages —
        including a trailing reserved-but-unflushed one — so either side
        mutating a shared page must go through :meth:`ensure_exclusive`.
        """
        if seq_id in self._free_ids:
            raise ValueError(f"sequence {seq_id} is released")
        parent = self.sequences[seq_id]
        child_id = self.add_sequence(
            initial_length=parent.capacity, shared_pages=parent.pages
        )
        self.sequences[child_id].length = parent.length
        return child_id

    def release_sequence(self, seq_id: int) -> None:
        """Drop this sequence's reference on all its pages, recycle its id."""
        if seq_id in self._free_ids:
            raise ValueError(f"sequence {seq_id} is already released")
        seq = self.sequences[seq_id]
        self.allocator.release_many(seq.pages)
        seq.pages = []
        seq.length = 0
        self._free_ids.append(seq_id)

    def total_tokens(self) -> int:
        return sum(seq.length for seq in self.sequences)

    def fragmentation(self) -> float:
        """Fraction of allocated page capacity holding no token."""
        capacity = sum(seq.capacity for seq in self.sequences)
        if capacity == 0:
            return 0.0
        return 1.0 - self.total_tokens() / capacity
