"""Logical-to-physical page tables for paged sequences."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.pages.allocator import PageAllocator


@dataclass
class PagedSequence:
    """One sequence's page table: logical token index -> (page, offset)."""

    page_size: int
    pages: List[int] = field(default_factory=list)
    length: int = 0

    def lookup(self, token_idx: int) -> Tuple[int, int]:
        """Physical (page_id, offset) of a logical token index."""
        if not 0 <= token_idx < self.length:
            raise IndexError(f"token {token_idx} out of range [0, {self.length})")
        return self.pages[token_idx // self.page_size], token_idx % self.page_size

    @property
    def capacity(self) -> int:
        return len(self.pages) * self.page_size

    def needs_page(self) -> bool:
        return self.length == self.capacity


class PageTable:
    """Page tables for a batch of sequences over one shared allocator.

    Bytes-per-token accounting is left to callers (it depends on the cache's
    bit width); this class manages only the page geometry.
    """

    def __init__(self, allocator: PageAllocator, page_size: int = 64):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.allocator = allocator
        self.page_size = page_size
        self.sequences: List[PagedSequence] = []
        self._free_ids: List[int] = []

    def add_sequence(self, initial_length: int = 0) -> int:
        """Register a sequence, allocating pages for an initial context.

        Returns the sequence id; ids of released sequences are recycled, so
        a long-lived table stays bounded by peak concurrency rather than
        total admissions.  Raises ``OutOfPagesError`` (leaving no partial
        allocation behind) when the pool cannot hold the context.
        """
        n_pages = -(-initial_length // self.page_size) if initial_length else 0
        pages = self.allocator.allocate_many(n_pages)
        seq = PagedSequence(page_size=self.page_size, pages=pages, length=initial_length)
        if self._free_ids:
            seq_id = self._free_ids.pop()
            self.sequences[seq_id] = seq
            return seq_id
        self.sequences.append(seq)
        return len(self.sequences) - 1

    def append_token(self, seq_id: int) -> None:
        """Grow a sequence by one token, allocating a page on boundaries."""
        seq = self.sequences[seq_id]
        if seq.needs_page():
            seq.pages.append(self.allocator.allocate())
        seq.length += 1

    def extend_sequence(self, seq_id: int, n_tokens: int) -> None:
        """Grow a sequence by ``n_tokens`` (one prefill chunk) atomically.

        Every page the extension needs is taken in one all-or-nothing
        allocation, so an ``OutOfPagesError`` leaves the sequence exactly
        as it was — a preempting caller can pick a victim and retry, and a
        mid-prefill preemption releases precisely the pages reserved so
        far, never pages from a half-applied chunk.
        """
        if n_tokens < 0:
            raise ValueError("n_tokens must be non-negative")
        if seq_id in self._free_ids:
            raise ValueError(f"sequence {seq_id} is released")
        seq = self.sequences[seq_id]
        target = seq.length + n_tokens
        n_pages = -(-target // self.page_size) - len(seq.pages)
        if n_pages > 0:
            seq.pages.extend(self.allocator.allocate_many(n_pages))
        seq.length = target

    def release_sequence(self, seq_id: int) -> None:
        """Free all pages of a finished sequence and recycle its id."""
        if seq_id in self._free_ids:
            raise ValueError(f"sequence {seq_id} is already released")
        seq = self.sequences[seq_id]
        self.allocator.free_many(seq.pages)
        seq.pages = []
        seq.length = 0
        self._free_ids.append(seq_id)

    def total_tokens(self) -> int:
        return sum(seq.length for seq in self.sequences)

    def fragmentation(self) -> float:
        """Fraction of allocated page capacity holding no token."""
        capacity = sum(seq.capacity for seq in self.sequences)
        if capacity == 0:
            return 0.0
        return 1.0 - self.total_tokens() / capacity
