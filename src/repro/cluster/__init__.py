"""Cluster layer: tensor-parallel page sharding + data-parallel replicas.

Two orthogonal ways to put more GPUs behind the serving engine:

- :mod:`repro.cluster.sharding` — ONE engine whose paged low-bit KV pool
  is head-sharded across ``tp`` tensor-parallel ranks
  (:class:`ShardedPagedBackend`), bit-identical to the single-rank run
  and priced with the per-step all-reduce tax.
- :mod:`repro.cluster.router` — ``replicas`` independent engines behind
  a :class:`Router` that dispatches arriving requests by policy
  (``round_robin`` / ``least_loaded`` / ``prefix_affinity``), merged
  into one :class:`ClusterReport`.

They compose: each replica can itself run ``tp``-sharded.
"""

from repro.cluster.report import ClusterReport
from repro.cluster.router import ROUTER_POLICIES, Router
from repro.cluster.sharding import ShardedPagedBackend, ShardedPagedStore, ShardedSeqHandle

__all__ = [
    "ClusterReport",
    "ROUTER_POLICIES",
    "Router",
    "ShardedPagedBackend",
    "ShardedPagedStore",
    "ShardedSeqHandle",
]
