"""Merged metrics of one routed cluster run.

A cluster run is ``replicas`` independent engine runs plus the router's
own bookkeeping; this report keeps all three views:

- the untouched per-replica :class:`~repro.serving.report.ServingReport`
  list (every single-engine metric stays inspectable),
- aggregates over the cluster — total/goodput tokens per second against
  the *slowest* replica's wall clock (replicas run concurrently, so the
  cluster is done when the last one is), and latency percentiles
  recomputed over the **merged** raw samples rather than averaged from
  per-replica percentiles (percentiles do not average),
- the router's dispatch counters: per-replica request counts, a
  load-imbalance ratio, and the cross-replica prefix-miss count — how
  many dispatches re-prefilled a shared prefix some other replica's
  cache already held, the quantity ``prefix_affinity`` drives to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.serving.report import ServingReport, _percentile


@dataclass
class ClusterReport:
    """Outcome of one :class:`~repro.cluster.router.Router` run."""

    policy: str
    replicas: int
    per_replica: List[ServingReport] = field(repr=False)
    #: Requests the router sent to each replica, in replica order.
    dispatch_counts: List[int]
    n_requests: int
    completed: int
    total_generated_tokens: int
    #: Wall clock of the cluster: the slowest replica's simulated time.
    sim_time_s: float
    #: Cluster throughput against that wall clock.
    sustained_tokens_per_s: float
    #: Same, counting only requests that met their deadline.
    goodput_tokens_per_s: float
    p50_latency_s: Optional[float]
    p99_latency_s: Optional[float]
    p50_ttft_s: Optional[float]
    p99_ttft_s: Optional[float]
    p50_tbt_s: Optional[float]
    p99_tbt_s: Optional[float]
    #: ``max(dispatch_counts) / mean(dispatch_counts)``; 1.0 is perfectly
    #: balanced.  Affinity routing trades some imbalance for cache hits.
    load_imbalance: float
    #: Dispatches whose shared-prefix group was already homed elsewhere.
    cross_replica_prefix_misses: int
    #: Distinct shared-prefix head keys the router saw / saw split across
    #: more than one replica.
    prefix_groups_seen: int
    prefix_groups_split: int
    #: Cluster-wide prefix-cache hit rate (summed tokens, not averaged
    #: per-replica rates).
    prefix_hit_rate: float

    @classmethod
    def build(
        cls,
        policy: str,
        reports: List[ServingReport],
        dispatch_counts: List[int],
        latencies_s: List[float],
        ttfts_s: List[float],
        tbts_s: List[float],
        cross_replica_prefix_misses: int = 0,
        prefix_groups_seen: int = 0,
        prefix_groups_split: int = 0,
    ) -> "ClusterReport":
        sim_time = max((r.sim_time_s for r in reports), default=0.0)
        total_tokens = sum(r.total_generated_tokens for r in reports)
        # Goodput tokens are reconstructed from each replica's rate over
        # its own clock, then re-based on the cluster clock.
        goodput_tokens = sum(r.goodput_tokens_per_s * r.sim_time_s for r in reports)
        probe = sum(r.prefix_probe_tokens for r in reports)
        hit = sum(r.prefix_hit_tokens for r in reports)
        mean_dispatch = sum(dispatch_counts) / len(dispatch_counts) if dispatch_counts else 0.0
        return cls(
            policy=policy,
            replicas=len(reports),
            per_replica=reports,
            dispatch_counts=dispatch_counts,
            n_requests=sum(r.n_requests for r in reports),
            completed=sum(r.completed for r in reports),
            total_generated_tokens=total_tokens,
            sim_time_s=sim_time,
            sustained_tokens_per_s=total_tokens / sim_time if sim_time > 0 else 0.0,
            goodput_tokens_per_s=goodput_tokens / sim_time if sim_time > 0 else 0.0,
            p50_latency_s=_percentile(latencies_s, 50.0),
            p99_latency_s=_percentile(latencies_s, 99.0),
            p50_ttft_s=_percentile(ttfts_s, 50.0),
            p99_ttft_s=_percentile(ttfts_s, 99.0),
            p50_tbt_s=_percentile(tbts_s, 50.0),
            p99_tbt_s=_percentile(tbts_s, 99.0),
            load_imbalance=(max(dispatch_counts) / mean_dispatch) if mean_dispatch > 0 else 0.0,
            cross_replica_prefix_misses=cross_replica_prefix_misses,
            prefix_groups_seen=prefix_groups_seen,
            prefix_groups_split=prefix_groups_split,
            prefix_hit_rate=hit / probe if probe > 0 else 0.0,
        )

    def to_dict(self) -> dict:
        """JSON-safe summary; per-replica reports nest as their own dicts."""
        out = {
            k: getattr(self, k)
            for k in (
                "policy",
                "replicas",
                "dispatch_counts",
                "n_requests",
                "completed",
                "total_generated_tokens",
                "sim_time_s",
                "sustained_tokens_per_s",
                "goodput_tokens_per_s",
                "p50_latency_s",
                "p99_latency_s",
                "p50_ttft_s",
                "p99_ttft_s",
                "p50_tbt_s",
                "p99_tbt_s",
                "load_imbalance",
                "cross_replica_prefix_misses",
                "prefix_groups_seen",
                "prefix_groups_split",
                "prefix_hit_rate",
            )
        }
        out["per_replica"] = [r.to_dict() for r in self.per_replica]
        return out
