"""Data-parallel request routing over independent engine replicas.

A :class:`Router` fronts ``replicas`` independent
:class:`~repro.serving.engine.ContinuousBatchingEngine` instances —
each with its own page pool, prefix cache and clock — and dispatches an
arrival-ordered request trace across them.  Replicas are driven in
lock-step with the trace: before each dispatch every replica is advanced
to the request's arrival time, so load snapshots (``least_loaded``) are
taken at the moment the request actually arrives, and afterwards each
replica drains its remaining work independently.

Policies:

- ``round_robin`` — dispatch ``i`` goes to replica ``i % replicas``.
  Oblivious: a shared-prefix group is sprayed across every replica, so
  each replica pays the group's prefill once and the cluster pays it
  ``replicas`` times.
- ``least_loaded`` — the replica with the fewest in-flight requests
  (resident pages, then index, break ties).  Balances queue depth but is
  just as prefix-oblivious.
- ``prefix_affinity`` — hash the request's *head prefix-block key*
  (:func:`~repro.serving.request.prefix_block_keys`), so every request
  of a shared-prefix group lands on the same replica — whose
  :class:`~repro.serving.prefix_cache.PrefixCache` already holds the
  group's pages.  Requests without a page-aligned shared prefix hash
  their own id (plain load spreading).

The hash is SHA-256 over the key's ``repr``, not builtin ``hash()`` —
block keys are tuples of strings/ints whose ``repr`` is stable, while
``hash()`` is salted per process (PYTHONHASHSEED) and would unstick the
routing between runs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Set

from repro.cluster.report import ClusterReport
from repro.serving.engine import ContinuousBatchingEngine, EngineConfig
from repro.serving.request import Request, prefix_block_keys

ROUTER_POLICIES = ("round_robin", "least_loaded", "prefix_affinity")


def _affinity_key(request: Request, page_size: int):
    """The routing key: the request's first prefix-cache block key.

    This is exactly the key the replica's prefix cache would index the
    head block under — ``("prefix", group, 0)`` when the shared prefix
    covers a full page, else a request-private tag — so equal routing
    keys mean "these requests can share cached pages".
    """
    return prefix_block_keys(request, 1, page_size)[0]


def _stable_hash(key) -> int:
    return int.from_bytes(hashlib.sha256(repr(key).encode()).digest()[:8], "big")


class Router:
    """Dispatch one request trace across ``replicas`` engine replicas."""

    def __init__(
        self,
        config: EngineConfig,
        requests: Sequence[Request],
        replicas: int,
        policy: str = "round_robin",
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if policy not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {policy!r}; pick one of {', '.join(ROUTER_POLICIES)}"
            )
        self.config = config
        self.policy = policy
        self.replicas = replicas
        #: One independent engine per replica; requests arrive via submit().
        self.engines = [ContinuousBatchingEngine(config, []) for _ in range(replicas)]
        self.requests = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        self.dispatch_counts = [0] * replicas
        #: ``req_id -> replica`` for every dispatched request.
        self.dispatch_log: Dict[int, int] = {}
        self._rr_next = 0
        #: First replica each shared-prefix head key landed on, and every
        #: replica it was ever sent to (split detection).
        self._group_home: Dict[object, int] = {}
        self._group_replicas: Dict[object, Set[int]] = {}
        #: Dispatches whose shared-prefix group was already resident on a
        #: *different* replica: each one re-prefills a prefix that some
        #: other replica's cache already holds.
        self.cross_replica_prefix_misses = 0

    # ------------------------------------------------------------- policies

    def _route(self, request: Request) -> int:
        if self.policy == "round_robin":
            idx = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.replicas
            return idx
        if self.policy == "least_loaded":
            return min(
                range(self.replicas),
                key=lambda i: (
                    self.engines[i].load_requests,
                    self.engines[i].resident_pages,
                    i,
                ),
            )
        return _stable_hash(_affinity_key(request, self.config.page_size)) % self.replicas

    def _account_prefix(self, request: Request, idx: int) -> None:
        key = _affinity_key(request, self.config.page_size)
        if key[0][0] != "prefix":  # no page-aligned shared prefix: nothing shareable
            return
        home = self._group_home.setdefault(key, idx)
        self._group_replicas.setdefault(key, set()).add(idx)
        if idx != home:
            self.cross_replica_prefix_misses += 1

    # --------------------------------------------------------------- driving

    def dispatch(self, request: Request) -> int:
        """Advance every replica to the arrival, route, submit.  Returns
        the chosen replica index."""
        for engine in self.engines:
            engine.advance_until(request.arrival_s)
        idx = self._route(request)
        self._account_prefix(request, idx)
        self.engines[idx].submit(request)
        self.dispatch_counts[idx] += 1
        self.dispatch_log[request.req_id] = idx
        return idx

    def run(self) -> ClusterReport:
        """Dispatch the whole trace, drain every replica, merge reports."""
        for request in self.requests:
            self.dispatch(request)
        reports = [engine.run() for engine in self.engines]
        groups_split = sum(1 for members in self._group_replicas.values() if len(members) > 1)
        return ClusterReport.build(
            policy=self.policy,
            reports=reports,
            dispatch_counts=list(self.dispatch_counts),
            latencies_s=self._merged_latencies(),
            ttfts_s=self._merged_ttfts(),
            tbts_s=[s for engine in self.engines for s in engine.tbt_samples],
            cross_replica_prefix_misses=self.cross_replica_prefix_misses,
            prefix_groups_seen=len(self._group_replicas),
            prefix_groups_split=groups_split,
        )

    # ------------------------------------------------------------- merged raw

    def _merged_latencies(self) -> List[float]:
        return [
            lc.finish_s - lc.request.arrival_s
            for engine in self.engines
            for lc in engine.lifecycles
            if lc.finish_s is not None
        ]

    def _merged_ttfts(self) -> List[float]:
        return [
            lc.first_token_s - lc.request.arrival_s
            for engine in self.engines
            for lc in engine.lifecycles
            if lc.first_token_s is not None
        ]
