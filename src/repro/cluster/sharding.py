"""Tensor-parallel sharding of the paged low-bit KV pool.

BitDecoding's headline table includes the 70B/8xA100 tensor-parallel
row; this module is that row made mechanical.  TP shards the *head*
space: attention heads are embarrassingly parallel (each head's QK^T,
softmax and PV touch only its own slice), and GQA groups map whole onto
ranks — rank ``r`` owns query heads ``[r*hq/tp, (r+1)*hq/tp)`` and their
``hkv/tp`` KV heads.  Everything positional (block tables, page ids,
sequence lengths, the scheduler) is *replicated*, so a
:class:`ShardedPagedStore` is simply ``tp`` rank-local
:class:`~repro.attn.paged.PagedBitKVCache` pools — each holding its
heads' packed words, quantization metadata and FP16 residual slots —
behind the **same** per-sequence block tables.

Bit-exactness falls out of per-head independence: quantization scales,
packed words, softmax and the PV reduction never mix heads, so slicing
the inputs per rank, running the *unmodified*
:class:`~repro.attn.paged.PagedBitBackend` machinery rank-locally, and
concatenating the outputs on the head axis reproduces the single-rank
run bit for bit.  ``serve-sim --tp 2 --execute`` turns that argument
into a hard cross-check.

Pricing: a TP decode step pays ONE rank's (head-sliced) attention kernel
— ranks run concurrently — plus the per-layer all-reduce tax
(:func:`repro.model.inference._allreduce_ms`) and the already-sharded
weight GEMMs; the backend defaults both ``n_gpus`` and ``tp`` to its own
degree so direct pricing calls see the tax too.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attn.paged import PagedBatchHandle, PagedBitBackend, PagedBitKVCache, PagedSeqHandle
from repro.attn.protocol import KVCacheHandle, register_backend
from repro.core.config import BitDecodingConfig
from repro.pages.allocator import PageAllocator
from repro.pages.page_table import PageTable
from repro.pages.tiers import TieredPageStore


class ShardedSeqHandle(KVCacheHandle):
    """One sequence across ``tp`` rank-local pools.

    Holds one :class:`~repro.attn.paged.PagedSeqHandle` per rank; the
    ranks share the sequence's block table (same page ids, same lengths),
    so any rank answers the positional questions.
    """

    batch = 1

    def __init__(self, ranks: List[PagedSeqHandle]):
        if not ranks:
            raise ValueError("a sharded sequence needs at least one rank")
        self.ranks = ranks

    @property
    def seq_id(self) -> int:
        return self.ranks[0].seq_id

    @property
    def seq_len(self) -> int:
        return self.ranks[0].seq_len

    @property
    def n_blocks(self) -> int:
        return self.ranks[0].n_blocks

    @property
    def res_len(self) -> int:
        return self.ranks[0].res_len


class ShardedPagedStore:
    """``tp`` rank-local page pools behind one shared page table.

    Each rank's :class:`~repro.attn.paged.PagedBitKVCache` holds
    ``hkv/tp`` heads' packed words/metadata/residual slots, indexed by
    the *same* page ids the scheduler manipulates — page reservation,
    preemption and prefix sharing happen once, in the table, and every
    rank pool follows.  The composite exposes the sequence-lifecycle
    surface the :class:`~repro.attn.runner.ModelRunner` drives
    (``adopt`` / ``free_slot`` / ``copy_pages`` / ...); the numeric
    surface lives on the per-rank stores, reached through
    :class:`ShardedPagedBackend`'s head-splitting overrides.
    """

    def __init__(
        self,
        config: BitDecodingConfig,
        hkv: int,
        head_dim: int,
        tp: int,
        n_pages: int = 256,
        n_slots: int = 16,
        table: Optional[PageTable] = None,
        tiers: Optional[TieredPageStore] = None,
    ):
        if tp < 1:
            raise ValueError("tp must be >= 1")
        if hkv % tp != 0:
            raise ValueError(
                f"tp={tp} does not divide hkv={hkv}; tensor parallelism "
                "shards whole KV-head groups"
            )
        if tiers is not None:
            raise NotImplementedError(
                "tiered offload under tensor parallelism is not supported: "
                "demote/promote would have to move every rank's fragment of "
                "a page as one transfer"
            )
        self.config = config
        self.hkv = hkv
        self.head_dim = head_dim
        self.tp = tp
        self.tiers = None
        if table is None:
            table = PageTable(PageAllocator(n_pages), page_size=config.residual_block_size)
            self.shared_table = False
        else:
            self.shared_table = True
        self.table = table
        self.block_tokens = config.residual_block_size
        #: Rank-local pools, each over the SAME table (reservation belongs
        #: to whoever owns the table; rank-level reserve is a no-op).
        self.ranks: List[PagedBitKVCache] = [
            PagedBitKVCache(config, hkv // tp, head_dim, n_slots=n_slots, table=table)
            for _ in range(tp)
        ]

    # ---------------------------------------------------- sequence lifecycle

    def adopt(self, seq_id: int, prefix_tokens: int = 0) -> ShardedSeqHandle:
        return ShardedSeqHandle([r.adopt(seq_id, prefix_tokens=prefix_tokens) for r in self.ranks])

    def add_sequence(self) -> ShardedSeqHandle:
        return self.adopt(self.table.add_sequence(0))

    def reattach(self, seq_id: int, seq_len: int, res_k=None, res_v=None) -> ShardedSeqHandle:
        raise NotImplementedError(
            "swap-in under tensor parallelism is not supported: the stash "
            "would have to carry every rank's residual fragment"
        )

    def reserve(self, handle: ShardedSeqHandle, n_tokens: int) -> None:
        """Reserve pages once in the shared table (store-owned mode only)."""
        if not self.shared_table:
            self.table.extend_sequence(handle.seq_id, n_tokens)

    def free_slot(self, handle: ShardedSeqHandle) -> None:
        for rank_store, rank_handle in zip(self.ranks, handle.ranks):
            rank_store.free_slot(rank_handle)

    def release(self, handle: ShardedSeqHandle) -> None:
        self.table.release_sequence(handle.seq_id)
        self.free_slot(handle)

    def copy_pages(self, src: List[int], dst: List[int]) -> None:
        for rank_store in self.ranks:
            rank_store.copy_pages(src, dst)

    # -------------------------------------------------------------- accounting

    @property
    def packed_nbytes(self) -> int:
        return sum(r.packed_nbytes for r in self.ranks)

    @property
    def meta_nbytes(self) -> int:
        return sum(r.meta_nbytes for r in self.ranks)

    @property
    def residual_nbytes(self) -> int:
        return sum(r.residual_nbytes for r in self.ranks)


@register_backend
class ShardedPagedBackend(PagedBitBackend):
    """Tensor-parallel paged backend: head-split, run per rank, concat.

    Subclasses :class:`~repro.attn.paged.PagedBitBackend` and reuses its
    numeric machinery *unmodified*: every override slices queries (head
    axis 2) and K/V (head axis 1) into ``tp`` contiguous chunks, wraps
    each rank's handles in an ordinary
    :class:`~repro.attn.paged.PagedBatchHandle` over that rank's pool,
    calls the inherited method, and concatenates the rank outputs on the
    head axis.  GQA query-head order is grouped by KV head, so contiguous
    query and KV splits stay aligned and each rank sees a well-formed
    ``gq``-grouped geometry.
    """

    name = "sharded-paged-bit"

    def __init__(self, engine=None, arch="a100", tp: int = 2, n_pages: int = 256, n_slots: int = 64):
        super().__init__(engine, arch, n_pages=n_pages, n_slots=n_slots)
        if tp < 1:
            raise ValueError("tp must be >= 1")
        self.tp = tp
        #: Rank-local delegate: the unmodified single-rank machinery.  The
        #: head-split overrides run each rank through this instead of
        #: unbound ``PagedBitBackend`` calls, because the parent's methods
        #: call each other through ``self`` (``decode_step`` falls back to
        #: ``decode_step_looped`` for singleton batches) and would
        #: re-enter the sharded overrides with rank-local handles.
        self._local = PagedBitBackend(self.engine, n_pages=n_pages, n_slots=n_slots)

    # ------------------------------------------------------------------ stores

    def make_store(
        self,
        hkv: int,
        head_dim: int,
        *,
        n_slots: int,
        table: Optional[PageTable] = None,
        tiers: Optional[TieredPageStore] = None,
    ) -> ShardedPagedStore:
        return ShardedPagedStore(
            self.config, hkv, head_dim, self.tp, n_slots=n_slots, table=table, tiers=tiers
        )

    def store_for(self, hkv: int, head_dim: int) -> ShardedPagedStore:
        key = (hkv, head_dim)
        store = self._stores.get(key)
        if store is None:
            store = ShardedPagedStore(
                self.config, hkv, head_dim, self.tp, n_pages=self.n_pages, n_slots=self.n_slots
            )
            self._stores[key] = store
        return store

    def new_handle(self, batch: int, hkv: int, head_dim: int) -> PagedBatchHandle:
        store = self.store_for(hkv, head_dim)
        return PagedBatchHandle(store, [store.add_sequence() for _ in range(batch)])

    # ---------------------------------------------------------------- numerics

    def _rank_bt(self, bt: PagedBatchHandle, r: int) -> PagedBatchHandle:
        return PagedBatchHandle(bt.store.ranks[r], [sh.ranks[r] for sh in bt.seqs])

    def _split_heads(self, x: np.ndarray, axis: int) -> List[np.ndarray]:
        if x.shape[axis] % self.tp != 0:
            raise ValueError(
                f"head axis of size {x.shape[axis]} does not split across tp={self.tp} ranks"
            )
        return np.split(x, self.tp, axis=axis)

    def prefill(
        self,
        q: Optional[np.ndarray],
        kv: Tuple[np.ndarray, np.ndarray],
        block_table: KVCacheHandle,
    ) -> Optional[np.ndarray]:
        bt: PagedBatchHandle = block_table
        k, v = kv
        n = k.shape[2]
        for sh in bt.seqs:
            bt.store.reserve(sh, n)
        q_parts = [None] * self.tp if q is None else self._split_heads(q, 2)
        k_parts = self._split_heads(k, 1)
        v_parts = self._split_heads(v, 1)
        outs = []
        for r in range(self.tp):
            out = self._local.prefill(
                q_parts[r], (k_parts[r], v_parts[r]), self._rank_bt(bt, r)
            )
            outs.append(out)
        return None if q is None else np.concatenate(outs, axis=2)

    def append_kv(self, kv: Tuple[np.ndarray, np.ndarray], block_table: KVCacheHandle) -> None:
        bt: PagedBatchHandle = block_table
        k, v = kv
        for sh in bt.seqs:
            bt.store.reserve(sh, 1)
        k_parts = self._split_heads(k, 1)
        v_parts = self._split_heads(v, 1)
        for r in range(self.tp):
            self._local.append_kv((k_parts[r], v_parts[r]), self._rank_bt(bt, r))

    def decode_step(self, q: np.ndarray, block_table: KVCacheHandle) -> np.ndarray:
        bt: PagedBatchHandle = block_table
        outs = [
            self._local.decode_step(q_r, self._rank_bt(bt, r))
            for r, q_r in enumerate(self._split_heads(q, 2))
        ]
        return np.concatenate(outs, axis=2)

    def decode_step_looped(self, q: np.ndarray, block_table: KVCacheHandle) -> np.ndarray:
        bt: PagedBatchHandle = block_table
        outs = [
            self._local.decode_step_looped(q_r, self._rank_bt(bt, r))
            for r, q_r in enumerate(self._split_heads(q, 2))
        ]
        return np.concatenate(outs, axis=2)

    def release(self, block_table: KVCacheHandle) -> None:
        bt: PagedBatchHandle = block_table
        for sh in bt.seqs:
            bt.store.release(sh)
        bt.seqs = []

    # ----------------------------------------------------------------- pricing

    def decode_step_ms(
        self,
        model,
        arch,
        batch: int,
        seq_len: int,
        n_gpus: Optional[int] = None,
        decode_groups: Optional[Sequence[Tuple[int, int]]] = None,
        tp: Optional[int] = None,
    ) -> float:
        """Per-rank attention + sharded GEMMs + the all-reduce tax.

        ``n_gpus``/``tp`` default to the backend's own degree, so direct
        pricing calls see the TP cost without extra plumbing (the engine
        passes its config's values explicitly, which must match).
        """
        return super().decode_step_ms(
            model,
            arch,
            batch,
            seq_len,
            self.tp if n_gpus is None else n_gpus,
            decode_groups,
            self.tp if tp is None else tp,
        )

    def mixed_step_ms(
        self,
        model,
        arch,
        decode_batch: int,
        decode_seq_len: int,
        prefill_chunks: Sequence[Tuple[int, int]],
        n_gpus: Optional[int] = None,
        decode_groups: Optional[Sequence[Tuple[int, int]]] = None,
        tp: Optional[int] = None,
    ) -> float:
        return super().mixed_step_ms(
            model,
            arch,
            decode_batch,
            decode_seq_len,
            prefill_chunks,
            self.tp if n_gpus is None else n_gpus,
            decode_groups,
            self.tp if tp is None else tp,
        )

    def prefill_time_ms(self, model, arch, prompt_len: int, n_gpus: Optional[int] = None) -> float:
        return super().prefill_time_ms(
            model, arch, prompt_len, self.tp if n_gpus is None else n_gpus
        )
