"""Experiment harness: structured results + paper-vs-measured reporting.

Every figure/table module in :mod:`repro.bench.figures` returns an
:class:`Experiment` — a set of labelled series with optional paper
reference values.  The benchmark files print them as aligned tables and
assert the qualitative *shape* (orderings, monotonicity, crossovers), per
DESIGN.md's reproduction contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Series:
    """One labelled line/bar group of an experiment."""

    label: str
    #: (x, value) points; x may be a sequence position, batch size, etc.
    points: List[Tuple[object, float]] = field(default_factory=list)
    #: Optional paper-reported values aligned with ``points``.
    paper: Optional[List[Optional[float]]] = None

    def add(self, x: object, value: float, paper: Optional[float] = None) -> None:
        self.points.append((x, value))
        if paper is not None or self.paper is not None:
            if self.paper is None:
                self.paper = [None] * (len(self.points) - 1)
            self.paper.append(paper)

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def value_at(self, x: object) -> float:
        for px, v in self.points:
            if px == x:
                return v
        raise KeyError(f"series {self.label!r} has no point at {x!r}")


@dataclass
class Experiment:
    """A complete figure/table reproduction."""

    exp_id: str
    title: str
    unit: str = "speedup vs baseline"
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def series_for(self, label: str) -> Series:
        if label not in self.series:
            self.series[label] = Series(label=label)
        return self.series[label]

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -------------------------------------------------------------- reporting

    def render(self) -> str:
        """Aligned text table, paper values in parentheses when known."""
        lines = [f"== {self.exp_id}: {self.title} ==", f"   unit: {self.unit}"]
        xs: List[object] = []
        for s in self.series.values():
            for x, _ in s.points:
                if x not in xs:
                    xs.append(x)
        label_w = max((len(s.label) for s in self.series.values()), default=8)
        header = " " * (label_w + 2) + "  ".join(f"{str(x):>12}" for x in xs)
        lines.append(header)
        for s in self.series.values():
            cells = []
            for x in xs:
                try:
                    v = s.value_at(x)
                except KeyError:
                    cells.append(f"{'-':>12}")
                    continue
                paper = None
                if s.paper is not None:
                    idx = [px for px, _ in s.points].index(x)
                    paper = s.paper[idx] if idx < len(s.paper) else None
                if abs(v) >= 1e4:
                    cell = f"{v:.3g}"
                elif abs(v) < 0.01:
                    cell = f"{v:.4f}"
                else:
                    cell = f"{v:.2f}"
                if paper is not None:
                    cell += f"({paper:g})"
                cells.append(f"{cell:>12}")
            lines.append(f"{s.label:<{label_w}}  " + "  ".join(cells))
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())


def assert_ordering(
    exp: Experiment, x: object, faster: str, slower: str, margin: float = 1.0
) -> None:
    """Assert series ``faster`` beats ``slower`` at ``x`` by ``margin``x."""
    fast = exp.series[faster].value_at(x)
    slow = exp.series[slower].value_at(x)
    assert fast >= slow * margin, (
        f"{exp.exp_id}: expected {faster} ({fast:.2f}) >= "
        f"{margin}x {slower} ({slow:.2f}) at {x}"
    )


def assert_monotonic_increase(exp: Experiment, label: str, tolerance: float = 0.98) -> None:
    """Assert a series rises (within tolerance) along its x axis."""
    vals = exp.series[label].values()
    for a, b in zip(vals, vals[1:]):
        assert b >= a * tolerance, (
            f"{exp.exp_id}: series {label} not monotonic: {vals}"
        )


def assert_within(
    exp: Experiment, label: str, x: object, lo: float, hi: float
) -> None:
    """Assert a measured value lies in the accepted reproduction band."""
    v = exp.series[label].value_at(x)
    assert lo <= v <= hi, (
        f"{exp.exp_id}: {label}@{x} = {v:.2f} outside the accepted band "
        f"[{lo}, {hi}]"
    )
