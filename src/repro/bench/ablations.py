"""Design-choice ablations beyond the paper's Fig. 16 / Table III.

DESIGN.md calls out several tunables the paper fixes by construction;
these sweeps quantify each one on the performance model:

- **warp width** ``Wn`` — Table III samples {1, 4}; the sweep shows the
  diminishing returns past the scheduler's hiding capacity and the Eq. 1
  residual-block growth that wider warps impose.
- **dequantization path** — lop3 vs ``static_cast`` per architecture.
- **tile size** ``T_n`` — smem footprint vs tiling efficiency.
- **page size** — paged-attention lookup overhead vs fragmentation.
- **key group size** — metadata traffic vs quantization error (the
  accuracy side uses the real quantizer, not the model).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.bench.harness import Experiment
from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.packing_kernel import build_packing_launch
from repro.core.quantization import QuantScheme, dequantize, quantize_key
from repro.gpu.arch import get_arch
from repro.gpu.kernel import simulate_kernel
from repro.gpu.profiler import profile_kernel
from repro.pages.allocator import PageAllocator
from repro.pages.page_table import PageTable


def warp_width_sweep(
    device: str = "a100",
    widths: Sequence[int] = (1, 2, 4, 8),
    geom: AttentionGeometry = None,
) -> Experiment:
    """Latency / TC utilization / residual-block size across ``Wn``."""
    arch = get_arch(device)
    geom = geom or AttentionGeometry(8, 32, 8, 32768, 128)
    exp = Experiment(
        exp_id=f"ablation-warp-width-{device}",
        title=f"Warp-width (Wn) sweep on {arch.name}",
        unit="ms | % | tokens",
    )
    for wn in widths:
        config = BitDecodingConfig(bits=4, wn=wn)
        launch = build_packing_launch(geom, config, arch)
        result = simulate_kernel(arch, launch)
        prof = profile_kernel(result)
        exp.series_for("Latency-ms").add(wn, result.time_ms)
        exp.series_for("TC-Utilization-pct").add(wn, prof.tensor_core_util_pct)
        exp.series_for("Residual-block-Nr").add(wn, config.residual_block_size)
    exp.note("latency falls steeply 1->4 then flattens; N_r grows linearly (Eq. 1)")
    return exp


def dequant_path_sweep(
    devices: Iterable[str] = ("a100", "rtx4090", "h100"),
    geom: AttentionGeometry = None,
) -> Experiment:
    """lop3 vs static_cast dequantization across architectures."""
    geom = geom or AttentionGeometry(8, 32, 8, 32768, 128)
    exp = Experiment(
        exp_id="ablation-dequant-path",
        title="Dequantization path: lop3 vs static_cast",
        unit="ms",
    )
    for device in devices:
        arch = get_arch(device)
        for method in ("lop3", "cvt"):
            config = BitDecodingConfig(bits=4, dequant_method=method)
            t = simulate_kernel(arch, build_packing_launch(geom, config, arch)).time_ms
            exp.series_for(method).add(device, t)
    exp.note("the cvt pipe's low throughput makes naive casts strictly slower")
    return exp


def tile_size_sweep(
    device: str = "a100",
    tiles: Sequence[int] = (32, 64, 128, 256),
    geom: AttentionGeometry = None,
) -> Experiment:
    """Latency and shared-memory footprint across ``T_n``."""
    arch = get_arch(device)
    geom = geom or AttentionGeometry(1, 32, 8, 65536, 128)
    exp = Experiment(
        exp_id=f"ablation-tile-size-{device}",
        title=f"KV tile size (T_n) sweep on {arch.name}",
        unit="ms | KiB",
    )
    for tile_n in tiles:
        config = BitDecodingConfig(bits=4, tile_n=tile_n)
        launch = build_packing_launch(geom, config, arch)
        result = simulate_kernel(arch, launch)
        exp.series_for("Latency-ms").add(tile_n, result.time_ms)
        exp.series_for("SMEM-per-block-KiB").add(
            tile_n, launch.smem_per_block_bytes / 1024
        )
    return exp


def page_size_sweep(
    device: str = "a100",
    page_sizes: Sequence[int] = (16, 32, 64, 128, 256),
    geom: AttentionGeometry = None,
    mean_seq_len: int = 32768,
) -> Experiment:
    """Paged-attention overhead vs allocation fragmentation per page size."""
    arch = get_arch(device)
    geom = geom or AttentionGeometry(16, 32, 8, 32768, 128)
    exp = Experiment(
        exp_id=f"ablation-page-size-{device}",
        title=f"Page-size sweep on {arch.name}",
        unit="ms | %",
    )
    rng = np.random.default_rng(0)
    lengths = rng.integers(mean_seq_len // 2, mean_seq_len * 3 // 2, size=64)
    for page in page_sizes:
        config = BitDecodingConfig(bits=4)
        launch = build_packing_launch(geom, config, arch, paged=True, page_size=page)
        result = simulate_kernel(arch, launch)
        exp.series_for("Latency-ms").add(page, result.time_ms)
        # Fragmentation of a realistic length distribution at this page size.
        table = PageTable(PageAllocator(1 << 22), page_size=page)
        for length in lengths:
            table.add_sequence(initial_length=int(length))
        exp.series_for("Fragmentation-pct").add(page, 100 * table.fragmentation())
    exp.note("small pages: more table lookups; large pages: more waste")
    return exp


def key_group_size_sweep(
    group_sizes: Sequence[int] = (16, 32, 64, 128),
    bits: int = 2,
    seed: int = 0,
) -> Experiment:
    """Metadata bytes vs reconstruction error across KC group sizes.

    The error side runs the *real* quantizer on an outlier-bearing key
    distribution (per-channel outliers, as KIVI reports for LLMs).
    """
    exp = Experiment(
        exp_id="ablation-key-group-size",
        title=f"Channel-wise key group-size sweep (INT{bits})",
        unit="bytes/token | mean abs error",
    )
    rng = np.random.default_rng(seed)
    k = rng.standard_normal((512, 128)).astype(np.float32)
    k[:, rng.integers(0, 128, size=4)] *= 20.0  # outlier channels
    for group in group_sizes:
        codes, params = quantize_key(
            k, QuantScheme(bits, "channel", group), seq_axis=0, channel_axis=1
        )
        err = float(np.abs(dequantize(codes, params) - k).mean())
        meta_per_token = params.nbytes / k.shape[0]
        exp.series_for("Meta-bytes-per-token").add(group, meta_per_token)
        exp.series_for("Mean-abs-error").add(group, err)
    exp.note("finer groups cost metadata bytes and buy reconstruction accuracy")
    return exp


def bit_width_sweep(
    device: str = "rtx4090",
    bit_widths: Sequence[int] = (8, 4, 2, 1),
    geom: AttentionGeometry = None,
) -> Experiment:
    """Latency across cache bit widths, including the 1-bit frontier.

    The paper cites 1-bit caches as an emerging direction (Sec. I); the
    kernel supports it end to end — the accuracy side of 1-bit lives in
    the LongBench-proxy suite, where it visibly collapses.
    """
    arch = get_arch(device)
    geom = geom or AttentionGeometry(1, 32, 8, 131072, 128)
    exp = Experiment(
        exp_id=f"ablation-bit-width-{device}",
        title=f"Cache bit-width sweep on {arch.name}",
        unit="ms",
    )
    from repro.baselines.flash_decoding import FlashDecodingV2

    fp16 = FlashDecodingV2(arch).decode_time_ms(geom)
    exp.series_for("Latency-ms").add("fp16", fp16)
    for bits in bit_widths:
        from repro.core.attention import BitDecoding

        engine = BitDecoding(BitDecodingConfig(bits=bits), arch)
        exp.series_for("Latency-ms").add(f"int{bits}", engine.decode_time_ms(geom))
    return exp
