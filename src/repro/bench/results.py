"""Reproducible benchmark run directories under ``eval/results/``.

The committed ``BENCH_*.json`` files at the repo root are *summaries* —
one merged document the regression gate diffs.  Everything else a run
produces (the exact configuration, seeds, and full per-run payload)
lands in its own directory::

    eval/results/<name>-<digest>/
        manifest.json   # name + the exact config (flags, seeds) of the run
        summary.json    # the same payload merged into the root summary

``<digest>`` is a content hash of the canonical config JSON, so the same
configuration always maps to the same directory (re-runs overwrite, a
changed flag or seed forks a new directory) and two machines running the
committed benchmark land on identical paths.  Nothing under
``eval/results/`` is committed; the manifest is what makes a loose root
summary reproducible after the fact.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional


def _canonical(config: dict) -> str:
    return json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)


def run_digest(config: dict) -> str:
    """Stable 10-hex-digit digest of a run configuration."""
    return hashlib.sha256(_canonical(config).encode()).hexdigest()[:10]


def write_run(
    name: str,
    config: dict,
    summary: dict,
    root: Optional[Path] = None,
) -> Path:
    """Persist one benchmark run under ``eval/results/`` and return its dir.

    ``config`` must hold everything needed to reproduce the run (model,
    trace shape, seeds, fault plan, fast/full mode); ``summary`` is the
    payload the caller also merges into the root ``BENCH_*.json``.
    """
    base = Path(root) if root is not None else Path("eval") / "results"
    run_dir = base / f"{name}-{run_digest(config)}"
    run_dir.mkdir(parents=True, exist_ok=True)
    manifest = {"name": name, "digest": run_digest(config), "config": config}
    (run_dir / "manifest.json").write_text(json.dumps(manifest, indent=2, default=str) + "\n")
    (run_dir / "summary.json").write_text(json.dumps(summary, indent=2, default=str) + "\n")
    return run_dir
