"""Benchmark harness: per-figure experiment definitions + reporting.

``repro.bench.figures`` holds one function per evaluation artifact
(Figs. 4/8-16, Tables I-III); ``repro.bench.harness`` holds the result
containers, table rendering and shape assertions the ``benchmarks/``
pytest files build on.
"""

from repro.bench.harness import (
    Experiment,
    Series,
    assert_monotonic_increase,
    assert_ordering,
    assert_within,
)

__all__ = [
    "Experiment",
    "Series",
    "assert_monotonic_increase",
    "assert_ordering",
    "assert_within",
]
