"""Experiment definitions: one function per paper table/figure.

Every function reproduces the corresponding evaluation artifact with the
exact workload parameters from the paper's captions, returning an
:class:`~repro.bench.harness.Experiment`.  Where the paper prints exact
numbers (Figs. 13/14, Tables I-III) they are attached as references; for
the sweep figures the paper's "up to" anchors are recorded as notes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    Atom,
    ContinuousPacking,
    FlashDecodingV2,
    FlashDecodingV3,
    Kivi,
    QServe,
    ablation_config,
)
from repro.bench.harness import Experiment
from repro.core.attention import BitDecoding
from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.packing_kernel import build_packing_launch
from repro.core.residual_kernel import build_prefill_quant_launch
from repro.baselines.ladder import LadderTransform
from repro.baselines.marlin import MarlinRepack
from repro.gpu.arch import get_arch
from repro.gpu.kernel import simulate_kernel
from repro.gpu.profiler import dequant_overhead_fraction, profile_kernel
from repro.model import (
    LLAMA2_7B,
    LLAMA31_8B,
    LLAMA31_70B,
    QWEN3_14B,
    QWEN3_8B,
    decode_throughput_tokens_per_s,
    fp16_format,
    int_format,
    max_throughput_tokens_per_s,
)
from repro.model.serving import cache_bytes_per_token


def _bd(arch, bits=4, granularity="channel", version="v2", **kw) -> BitDecoding:
    return BitDecoding(
        BitDecodingConfig(bits=bits, granularity=granularity, version=version, **kw),
        arch,
    )


# ---------------------------------------------------------------------------
# Fig. 8 — Blackwell (RTX 5090 / RTX PRO 6000), native MXFP4
# ---------------------------------------------------------------------------


def fig8_blackwell(device: str = "rtx5090") -> Experiment:
    """Kernel speedups with native MXFP4 on a Blackwell part.

    Single: bs=1, hq=128, hkv=8, d=128 over 8k/32k/128k.
    Batches: len=8k, hq=32, hkv=8, bs in {8, 32, 128}.
    """
    arch = get_arch(device)
    exp = Experiment(
        exp_id=f"fig8-{device}",
        title=f"Kernel performance with mxfp4 on {arch.name} (Blackwell)",
    )
    base = FlashDecodingV2(arch)
    kivi4 = Kivi(arch, 4)
    bd_fp4 = BitDecoding(BitDecodingConfig(version="fp4", fp4_format="mxfp4"), arch)

    for seq in (8192, 32768, 131072):
        geom = AttentionGeometry(1, 128, 8, seq, 128)
        ref = base.decode_time_ms(geom)
        exp.series_for("Single/KIVI-4").add(seq, ref / kivi4.decode_time_ms(geom))
        exp.series_for("Single/BitDecoding-mxfp4").add(seq, ref / bd_fp4.decode_time_ms(geom))
    for bs in (8, 32, 128):
        geom = AttentionGeometry(bs, 32, 8, 8192, 128)
        ref = base.decode_time_ms(geom)
        exp.series_for("Batches/KIVI-4").add(bs, ref / kivi4.decode_time_ms(geom))
        exp.series_for("Batches/BitDecoding-mxfp4").add(bs, ref / bd_fp4.decode_time_ms(geom))
    exp.note(
        "paper anchors: RTX 5090 up to 8.6x batched, >4.3x single@128k; "
        "RTX PRO 6000 peaks at 6.5x"
    )
    return exp


# ---------------------------------------------------------------------------
# Fig. 9 — Hopper (H100), v2 vs v3 instruction paths
# ---------------------------------------------------------------------------


def fig9_hopper() -> Experiment:
    """H100: Single (bs=1, hq=128, hkv=32, 1k-100k) and Batches (32k)."""
    arch = get_arch("h100")
    exp = Experiment(exp_id="fig9-h100", title="Kernel performance on Hopper (H100)")
    base = FlashDecodingV2(arch)
    fa3 = FlashDecodingV3(arch)
    systems = {
        "BitDecoding-KT-4 (v2)": _bd(arch, 4, "tensor", "v2"),
        "BitDecoding-KC-4 (v2)": _bd(arch, 4, "channel", "v2"),
        "BitDecoding-KC-2 (v2)": _bd(arch, 2, "channel", "v2"),
        "BitDecoding-KT-4 (v3)": _bd(arch, 4, "tensor", "v3"),
        "BitDecoding-KC-4 (v3)": _bd(arch, 4, "channel", "v3"),
        "BitDecoding-KC-2 (v3)": _bd(arch, 2, "channel", "v3"),
    }
    for seq in (1024, 10240, 102400):
        geom = AttentionGeometry(1, 128, 32, seq, 128)
        ref = base.decode_time_ms(geom)
        exp.series_for("Single/Flash-attn-v3").add(seq, ref / fa3.decode_time_ms(geom))
        for label, system in systems.items():
            exp.series_for(f"Single/{label}").add(seq, ref / system.decode_time_ms(geom))
    for bs in (8, 32, 128):
        geom = AttentionGeometry(bs, 128, 32, 32768, 128)
        ref = base.decode_time_ms(geom)
        exp.series_for("Batches/Flash-attn-v3").add(bs, ref / fa3.decode_time_ms(geom))
        for label, system in systems.items():
            exp.series_for(f"Batches/{label}").add(bs, ref / system.decode_time_ms(geom))
    exp.note("paper anchors: BitDecoding-v2 up to 4.1x, v3 up to 8.0x")
    return exp


# ---------------------------------------------------------------------------
# Fig. 10 — RTX 4090: Single / Batches / Pages x MHA / GQA
# ---------------------------------------------------------------------------


def fig10_rtx4090() -> Experiment:
    """The six-panel Ada evaluation."""
    arch = get_arch("rtx4090")
    exp = Experiment(exp_id="fig10-rtx4090", title="Kernel performance on RTX 4090")
    base = FlashDecodingV2(arch)
    bd = {
        "KT-4": _bd(arch, 4, "tensor"),
        "KC-4": _bd(arch, 4, "channel"),
        "KC-2": _bd(arch, 2, "channel"),
    }
    kivi = {"KIVI-4": Kivi(arch, 4), "KIVI-2": Kivi(arch, 2)}
    qserve = QServe(arch, 4)

    for hkv, variant in ((32, "MHA"), (8, "GQA")):
        # Single: bs=1, hq=32, seq sweep.
        for seq in (1024, 10240, 102400):
            geom = AttentionGeometry(1, 32, hkv, seq, 128)
            ref = base.decode_time_ms(geom)
            for label, system in {**kivi, **bd}.items():
                exp.series_for(f"Single-{variant}/{label}").add(
                    seq, ref / system.decode_time_ms(geom)
                )
        # Batches: len=4k, bs sweep.
        for bs in (8, 32, 128):
            geom = AttentionGeometry(bs, 32, hkv, 4096, 128)
            ref = base.decode_time_ms(geom)
            for label, system in {**kivi, **bd}.items():
                exp.series_for(f"Batches-{variant}/{label}").add(
                    bs, ref / system.decode_time_ms(geom)
                )
        # Pages: len=2k, bs 2..8, vs fused CUDA-core systems.
        for bs in (2, 4, 8):
            geom = AttentionGeometry(bs, 32, hkv, 2048, 128)
            ref = base.decode_time_ms(geom, paged=True)
            exp.series_for(f"Pages-{variant}/QServe").add(
                bs, ref / qserve.decode_time_ms(geom)
            )
            if variant == "MHA":
                exp.series_for(f"Pages-{variant}/Atom").add(
                    bs, ref / Atom(arch, 4).decode_time_ms(geom)
                )
            for label, system in bd.items():
                exp.series_for(f"Pages-{variant}/{label}").add(
                    bs, ref / system.decode_time_ms(geom)
                )
    exp.note(
        "paper anchors: ~4x (4-bit) / >7x (2-bit) in Single+Batches; Pages "
        "MHA BitDecoding >6x vs QServe 3.5x; Pages GQA 3x vs QServe 1.4x"
    )
    return exp


# ---------------------------------------------------------------------------
# Fig. 11 — A100
# ---------------------------------------------------------------------------


def fig11_a100() -> Experiment:
    """A100: Single (hq=128, hkv=16), Batches (32k), Pages (2k, GQA)."""
    arch = get_arch("a100")
    exp = Experiment(exp_id="fig11-a100", title="Kernel performance on A100")
    base = FlashDecodingV2(arch)
    bd = {
        "KT-4": _bd(arch, 4, "tensor"),
        "KC-4": _bd(arch, 4, "channel"),
        "KC-2": _bd(arch, 2, "channel"),
    }
    kivi = {"KIVI-4": Kivi(arch, 4), "KIVI-2": Kivi(arch, 2)}

    for seq in (1024, 10240, 102400):
        geom = AttentionGeometry(1, 128, 16, seq, 128)
        ref = base.decode_time_ms(geom)
        for label, system in {**kivi, **bd}.items():
            exp.series_for(f"Single/{label}").add(seq, ref / system.decode_time_ms(geom))
    for bs in (8, 32, 128):
        geom = AttentionGeometry(bs, 128, 16, 32768, 128)
        ref = base.decode_time_ms(geom)
        for label, system in {**kivi, **bd}.items():
            exp.series_for(f"Batches/{label}").add(bs, ref / system.decode_time_ms(geom))
    for bs in (8, 16, 32, 64):
        geom = AttentionGeometry(bs, 32, 8, 2048, 128)
        ref = base.decode_time_ms(geom, paged=True)
        exp.series_for("Pages/QServe").add(bs, ref / QServe(arch, 4).decode_time_ms(geom))
        for label, system in bd.items():
            exp.series_for(f"Pages/{label}").add(bs, ref / system.decode_time_ms(geom))
    exp.note(
        "paper anchors: BitDecoding up to 3x; KIVI/QServe can fall below the "
        "FP16 baseline; the 4-bit vs 2-bit gap narrows vs RTX 4090"
    )
    return exp


# ---------------------------------------------------------------------------
# Fig. 12 — end-to-end vs KIVI (LLaMA-3.1-8B on A100)
# ---------------------------------------------------------------------------


def fig12_e2e_kivi() -> Experiment:
    """(a) Single-batch latency speedup at 32K/64K/128K; (b) batched
    decoding throughput at seq 4k."""
    arch = get_arch("a100")
    model = LLAMA31_8B
    exp = Experiment(
        exp_id="fig12-e2e-kivi",
        title="End-to-end vs non-fused attention (LLaMA-3.1-8B, A100)",
        unit="latency speedup (a) / tokens-s (b)",
    )
    from repro.model.inference import decode_step_ms

    fd = FlashDecodingV2(arch)
    systems = {
        "Kivi-4": Kivi(arch, 4),
        "Kivi-2": Kivi(arch, 2),
        "BitDecoding-KC-4": _bd(arch, 4),
        "BitDecoding-KC-2": _bd(arch, 2),
    }
    budget = arch.memory_gb * (1024 ** 3) * 0.9
    for seq in (32768, 65536, 131072):
        ref = decode_step_ms(model, arch, fd, batch=1, seq_len=seq)
        for label, system in systems.items():
            if label.startswith("Kivi"):
                # KIVI's non-tiled prefill materializes an LxL score tile
                # per concurrently-processed head (two in flight).
                workspace = 2.0 * float(seq) ** 2 * 2.0
                kivi_fmt = int_format(int(label[-1]), model, group_size=32)
                resident = (
                    model.weights_bytes()
                    + seq * cache_bytes_per_token(model, kivi_fmt)
                    + workspace
                )
                if resident > budget:
                    exp.series_for(f"Single/{label}").add(seq, float("nan"))
                    exp.note(f"{label} OOM at seq {seq} (paper: Kivi OOM at 128K)")
                    continue
            t = decode_step_ms(model, arch, system, batch=1, seq_len=seq)
            exp.series_for(f"Single/{label}").add(seq, ref / t)
    for bs in (10, 20, 30, 40, 50):
        for label, system in [("FlashDecoding-v2", fd)] + list(systems.items()):
            tput = decode_throughput_tokens_per_s(model, arch, system, bs, 4096)
            exp.series_for(f"Batches/{label}").add(bs, tput)
    exp.note(
        "paper anchors: up to 3.3x single-batch speedup at 128K; BD-KC-4 ~900 "
        "and KC-2 ~1200 tok/s vs KIVI < 700"
    )
    return exp


# ---------------------------------------------------------------------------
# Fig. 13 — serving throughput vs QServe across models
# ---------------------------------------------------------------------------

#: Paper-reported tokens/s (Fig. 13): model -> (FDv2, QServe, BitDecoding).
FIG13_PAPER = {
    "llama-2-7B": (13.92, 59.71, 130.00),
    "llama-3.1-8B": (48.50, 32.81, 147.21),
    "llama-3.1-70B": (11.12, 8.05, 28.23),
    "Qwen3-8B": (51.14, 45.19, 128.39),
    "Qwen3-14B": (43.95, 32.74, 99.52),
}


def fig13_e2e_qserve() -> Experiment:
    """Pages-mode max throughput (seq 32k) across the five models."""
    arch = get_arch("a100")
    exp = Experiment(
        exp_id="fig13-e2e-qserve",
        title="Serving throughput vs QServe (pages, seq 32k)",
        unit="tokens/s",
    )
    for model, n_gpus in (
        (LLAMA2_7B, 1),
        (LLAMA31_8B, 1),
        (LLAMA31_70B, 8),
        (QWEN3_8B, 1),
        (QWEN3_14B, 1),
    ):
        paper = FIG13_PAPER[model.name]
        fd_tput = max_throughput_tokens_per_s(
            model, arch, fp16_format(), FlashDecodingV2(arch), 32768, n_gpus
        )
        qs_tput = max_throughput_tokens_per_s(
            model, arch, int_format(4, model), QServe(arch, 4), 32768, n_gpus
        )
        bd_tput = max_throughput_tokens_per_s(
            model, arch, int_format(4, model), _bd(arch, 4), 32768, n_gpus
        )
        exp.series_for("FlashDecoding-v2").add(model.name, fd_tput, paper=paper[0])
        exp.series_for("Qserve").add(model.name, qs_tput, paper=paper[1])
        exp.series_for("Bitdecoding").add(model.name, bd_tput, paper=paper[2])
    exp.note("paper: QServe wins only on the MHA model (LLaMA-2-7B); BD >2x QServe")
    return exp


# ---------------------------------------------------------------------------
# Fig. 14 — residual-cache runtime overhead
# ---------------------------------------------------------------------------

#: Paper latencies (ms) on the LLaMA-3.1-8B geometry: seq -> (fp16, int4
#: without residual, int4 with residual).
FIG14_PAPER = {
    4096: (0.087, 0.041, 0.057),
    16384: (0.220, 0.094, 0.112),
    32768: (0.400, 0.162, 0.180),
    65536: (0.764, 0.291, 0.309),
    131072: (1.487, 0.555, 0.572),
}


def fig14_residual_overhead() -> Experiment:
    """Latency of FP16 vs INT4 without/with the residual kernel."""
    arch = get_arch("a100")
    exp = Experiment(
        exp_id="fig14-residual",
        title="Runtime overhead of the residual KV cache (A100)",
        unit="latency ms",
    )
    base = FlashDecodingV2(arch)
    engine = _bd(arch, 4)
    for seq, paper in FIG14_PAPER.items():
        geom = AttentionGeometry(1, 32, 8, seq, 128)
        fp16 = base.decode_time_ms(geom)
        # W/O residual: the idealized packed-only kernel over the full cache.
        launch = build_packing_launch(geom, engine.config, arch, packed_len=seq)
        wo = simulate_kernel(arch, launch).time_ms
        w = engine.decode_time_ms(geom)
        exp.series_for("FP16 FlashDecoding-v2").add(seq, fp16, paper=paper[0])
        exp.series_for("INT4 W/O Residual").add(seq, wo, paper=paper[1])
        exp.series_for("INT4 W/ Residual").add(seq, w, paper=paper[2])
    exp.note("the W/ - W/O gap is a near-constant extra launch (paper ~17us)")
    return exp


# ---------------------------------------------------------------------------
# Fig. 15 — dequantization overhead + micro analysis
# ---------------------------------------------------------------------------


def fig15_dequant_overhead() -> Experiment:
    """(a) dequant fraction per system; (b) Atom-vs-BD pipe utilization."""
    arch = get_arch("rtx4090")
    exp = Experiment(
        exp_id="fig15-dequant",
        title="Dequantization overhead analysis (RTX 4090, MHA, bs=8, 4k)",
        unit="fraction of kernel time / pipe %",
    )
    geom = AttentionGeometry(8, 32, 32, 4096, 128)

    systems = {
        "Atom": Atom(arch, 4).decode_result(geom),
        "Qserve": QServe(arch, 4).decode_result(geom, paged=False),
        "B-KT-4": _bd(arch, 4, "tensor").decode_results(geom)[0],
        "B-KC-4": _bd(arch, 4, "channel").decode_results(geom)[0],
        "B-KC-2": _bd(arch, 2, "channel").decode_results(geom)[0],
    }
    paper_fracs = {"Atom": 0.48, "Qserve": 0.45, "B-KT-4": 0.13, "B-KC-4": 0.14, "B-KC-2": 0.33}
    for label, result in systems.items():
        exp.series_for("DequantFraction").add(
            label, dequant_overhead_fraction(result), paper=paper_fracs.get(label)
        )

    paper_micro = {
        "Atom": {"Mem. T.": 72.24, "Tensor Core": 0.0, "FMA": 19.0, "ALU": 32.5},
        "BitDecoding": {"Mem. T.": 88.31, "Tensor Core": 24.0, "FMA": 13.0, "ALU": 12.5},
    }
    for label, result in (("Atom", systems["Atom"]), ("BitDecoding", systems["B-KC-4"])):
        prof = profile_kernel(result)
        micro = {
            "Mem. T.": prof.memory_throughput_pct,
            "Tensor Core": prof.tensor_core_util_pct,
            "FMA": prof.fma_pct,
            "ALU": prof.alu_pct,
        }
        for metric, value in micro.items():
            exp.series_for(f"Micro/{label}").add(
                metric, value, paper=paper_micro[label][metric]
            )
    return exp


# ---------------------------------------------------------------------------
# Fig. 16 — optimization breakdown
# ---------------------------------------------------------------------------


def fig16_breakdown() -> Experiment:
    """Continuous packing -> +Layout -> +Warps -> +Pipeline across devices."""
    exp = Experiment(
        exp_id="fig16-breakdown",
        title="Breakdown of BitDecoding optimizations",
        unit="speedup vs FP16 FlashDecoding-v2",
    )
    stages = [
        ("Baseline (Continuous Packing)", dict(layout=False, warps=False, pipeline=False)),
        ("Layout", dict(layout=True, warps=False, pipeline=False)),
        ("Layout + Warps", dict(layout=True, warps=True, pipeline=False)),
        ("Layout + Warps + Pipeline", dict(layout=True, warps=True, pipeline=True)),
    ]
    for device, version in (("a100", "v2"), ("h100", "v3"), ("rtx5090", "fp4")):
        arch = get_arch(device)
        geom = AttentionGeometry(8, 32, 8, 8192, 128)
        ref = FlashDecodingV2(arch).decode_time_ms(geom)
        base_cfg = BitDecodingConfig(bits=4, version=version)
        for label, flags in stages:
            cfg = ablation_config(base_cfg, **flags)
            if label.startswith("Baseline"):
                system = ContinuousPacking(arch, base_cfg)
                t = system.decode_time_ms(geom)
            else:
                engine = BitDecoding(cfg, arch)
                t = engine.decode_time_ms(geom)
            exp.series_for(label).add(device, ref / t)
    exp.note("every optimization stage must add speedup on every device")
    return exp


# ---------------------------------------------------------------------------
# Table I — efficiency / accuracy trade-off
# ---------------------------------------------------------------------------

TABLE1_PAPER = {
    "FP16": (49.25, 48.25),
    "INT4": (147.21, 48.16),
    "INT2": (209.48, 47.38),
}


def table1_accuracy(quick: bool = False) -> Experiment:
    """Throughput (A100 serving model) + LongBench-proxy accuracy."""
    from repro.model.longbench import DEFAULT_SUITE, TaskConfig, run_suite

    arch = get_arch("a100")
    model = LLAMA31_8B
    exp = Experiment(
        exp_id="table1-accuracy",
        title="Efficiency and accuracy trade-off (LLaMA-3.1-8B, 32K)",
        unit="tokens/s | proxy accuracy %",
    )
    suite = DEFAULT_SUITE
    if quick:
        suite = tuple(
            TaskConfig(
                name=t.name, n_pairs=t.n_pairs, head_dim=t.head_dim, noise=t.noise,
                key_similarity=t.key_similarity, logit_scale=t.logit_scale, trials=40,
            )
            for t in DEFAULT_SUITE[:1]
        )

    fd_tput = max_throughput_tokens_per_s(
        model, arch, fp16_format(), FlashDecodingV2(arch), 32768
    )
    exp.series_for("Throughput").add("FP16", fd_tput, paper=TABLE1_PAPER["FP16"][0])
    acc_fp16 = run_suite(None, suite)["average"]
    exp.series_for("Accuracy").add("FP16", 100 * acc_fp16, paper=TABLE1_PAPER["FP16"][1])

    for bits in (4, 2):
        engine = _bd(arch, bits)
        tput = max_throughput_tokens_per_s(
            model, arch, int_format(bits, model), engine, 32768
        )
        acc = run_suite(engine, suite)["average"]
        exp.series_for("Throughput").add(
            f"INT{bits}", tput, paper=TABLE1_PAPER[f"INT{bits}"][0]
        )
        exp.series_for("Accuracy").add(
            f"INT{bits}", 100 * acc, paper=TABLE1_PAPER[f"INT{bits}"][1]
        )
    exp.note("paper: INT4 +2.98x throughput at -0.2% acc; INT2 +4.25x at -2.7%")
    return exp


# ---------------------------------------------------------------------------
# Table II — quantization + packing latency
# ---------------------------------------------------------------------------

TABLE2_PAPER = {
    "Marlin": (58.02, 0.41),
    "Ladder": (4.79, 0.65),
    "BitDecoding": (0.0599, 0.008),
}


def table2_quantpack() -> Experiment:
    """Quant+pack latency at 128K: Marlin vs Ladder vs fused BitDecoding."""
    arch = get_arch("a100")
    geom = AttentionGeometry(1, 32, 8, 131072, 128)
    exp = Experiment(
        exp_id="table2-quantpack",
        title="Quantization and packing latency during inference (128K)",
        unit="latency ms",
    )
    marlin = MarlinRepack(arch)
    ladder = LadderTransform(arch)
    exp.series_for("Marlin").add("Prefill", marlin.prefill_latency_ms(geom), paper=TABLE2_PAPER["Marlin"][0])
    exp.series_for("Marlin").add("Decode", marlin.decode_latency_ms(geom), paper=TABLE2_PAPER["Marlin"][1])
    exp.series_for("Ladder").add("Prefill", ladder.prefill_latency_ms(geom), paper=TABLE2_PAPER["Ladder"][0])
    exp.series_for("Ladder").add("Decode", ladder.decode_latency_ms(geom), paper=TABLE2_PAPER["Ladder"][1])

    config = BitDecodingConfig(bits=4)
    prefill = simulate_kernel(arch, build_prefill_quant_launch(geom, config, arch)).time_ms
    # Decode: quantization+packing is fused into the Residual Kernel's flush
    # (once per N_r tokens, no extra launch); its cost is the time delta of
    # a flushing vs non-flushing residual pass.
    from repro.core.residual_kernel import build_residual_launch

    flush = simulate_kernel(arch, build_residual_launch(geom, config, arch, flush=True))
    noflush = simulate_kernel(arch, build_residual_launch(geom, config, arch, flush=False))
    decode_cost = max(flush.time_ms - noflush.time_ms, 1e-5)
    exp.series_for("BitDecoding").add("Prefill", prefill, paper=TABLE2_PAPER["BitDecoding"][0])
    exp.series_for("BitDecoding").add("Decode", decode_cost, paper=TABLE2_PAPER["BitDecoding"][1])
    exp.note("BitDecoding decode cost = fused flush work once per N_r tokens")
    return exp


# ---------------------------------------------------------------------------
# Table III — warps + cooperative softmax
# ---------------------------------------------------------------------------


def table3_coop_softmax() -> Experiment:
    """Wn / cooperative-softmax ablation: latency, TC util, validity."""
    arch = get_arch("a100")
    geom = AttentionGeometry(8, 32, 8, 32768, 128)
    exp = Experiment(
        exp_id="table3-coop-softmax",
        title="Impact of cooperative softmax and warps",
        unit="ms | % | bool",
    )
    paper = {
        ("1", "off"): (3.746, 10.91, True),
        ("4", "off"): (0.610, 19.71, False),
        ("4", "on"): (0.613, 19.66, True),
    }
    rng = np.random.default_rng(7)
    k = rng.standard_normal((1, 2, 512, 64)).astype(np.float16)
    v = rng.standard_normal((1, 2, 512, 64)).astype(np.float16)
    q = (rng.standard_normal((1, 1, 8, 64)) * 3.0).astype(np.float16)

    for wn, coop in ((1, False), (4, False), (4, True)):
        config = BitDecodingConfig(
            bits=4, wn=4, use_warp_parallel=(wn > 1), use_coop_softmax=coop
        )
        launch = build_packing_launch(geom, config, arch)
        result = simulate_kernel(arch, launch)
        prof = profile_kernel(result)

        # Validity from real numerics against the exact reference.
        engine = BitDecoding(config, arch)
        cache = engine.prefill(k, v)
        out = engine.decode(q, cache)
        ref_engine = BitDecoding(
            BitDecodingConfig(bits=4, wn=4, use_warp_parallel=(wn > 1), use_coop_softmax=True),
            arch,
        )
        ref = ref_engine.decode(q, cache)
        valid = bool(np.allclose(out, ref, atol=1e-3))

        key = (str(wn), "on" if coop else "off")
        exp.series_for("Latency-ms").add(key, result.time_ms, paper=paper[key][0])
        exp.series_for("TC-Utilization-pct").add(key, prof.tensor_core_util_pct, paper=paper[key][1])
        exp.series_for("Valid").add(key, float(valid), paper=float(paper[key][2]))
    exp.note("Wn=4 without cooperative softmax must be FAST but WRONG")
    return exp


# ---------------------------------------------------------------------------
# Fig. 4b — motivation: dequant under the original warp design
# ---------------------------------------------------------------------------


def fig4_motivation() -> Experiment:
    """Micro profile of the original (Wn=1) warp layout with/without DQ.

    Both bars run the *same* low-bit kernel under FlashAttention's original
    single-warp-along-N layout; "W/O Dequant" removes only the
    dequantization instructions (a what-if the profiler supports via trace
    subtraction), isolating DQ's effect exactly as the paper's Nsight
    comparison does.
    """
    arch = get_arch("rtx4090")
    geom = AttentionGeometry(8, 32, 8, 8192, 128)
    exp = Experiment(
        exp_id="fig4-motivation",
        title="Original warp design with and without dequantization",
        unit="percent",
    )
    config = BitDecodingConfig(bits=4, use_warp_parallel=False, use_pipeline=False)
    launch = build_packing_launch(geom, config, arch)
    with_dq = simulate_kernel(arch, launch)

    stripped = build_packing_launch(geom, config, arch)
    stripped.trace = stripped.trace.without(stripped.subtraces["dequant"])
    stripped.subtraces = {}
    without_dq = simulate_kernel(arch, stripped)

    for label, result in (("W/O Dequant", without_dq), ("W/ Dequant", with_dq)):
        prof = profile_kernel(result)
        exp.series_for(label).add("Com. Throughput", prof.compute_throughput_pct)
        exp.series_for(label).add("TCs utilization", prof.tensor_core_util_pct)
        exp.series_for(label).add("Memory Stalls", prof.serialization_stall_pct)
    exp.note("adding DQ under Wn=1 must cut compute throughput / TC util and raise stalls")
    return exp
