"""Command-line entry point: quick tours of the reproduction.

Usage::

    python -m repro devices                 # registered GPU table
    python -m repro demo                    # tiny numerics demo
    python -m repro sweep [--arch a100]     # kernel speedup sweep
    python -m repro experiment fig10        # run one paper experiment
    python -m repro serve-sim [--steps 50]  # continuous-batching simulation
    python -m repro serve-sim --model tiny --execute  # real token execution
    python -m repro serve-sim --prefix-cache --shared-prefix 0.5  # prefix caching
    python -m repro serve-sim --model tiny --execute --preemption swap \\
        --device-pages 16 --host-pages 48   # tiered KV offload
    python -m repro serve-sim --model tiny --execute --chaos 7 \\
        --device-pages 8 --host-pages 28 --max-batch 3 --requests 8 \\
        --rate 100000 --prompt-len 40 --output-len 60 --seed 3 \\
        --deadline-ms 6                     # fault injection + recovery proof
    python -m repro serve-sim --model tiny --execute --tp 2 --replicas 2 \\
        --router prefix_affinity --prefix-cache --shared-prefix 0.5 \\
        --prefix-groups 3                   # TP sharding + replica routing
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_devices() -> None:
    from repro.gpu.arch import GPU_REGISTRY

    header = (
        f"{'name':<14} {'gen':<10} {'SMs':>4} {'GB/s':>6} {'TC fp16':>8} "
        f"{'TC fp4':>7} {'mem GB':>7} {'wgmma':>6} {'fp4':>4}"
    )
    print(header)
    print("-" * len(header))
    for spec in GPU_REGISTRY.values():
        print(
            f"{spec.name:<14} {spec.generation:<10} {spec.sm_count:>4} "
            f"{spec.dram_bw_gbs:>6.0f} {spec.tc_fp16_tflops:>8.1f} "
            f"{spec.tc_fp4_tflops:>7.1f} {spec.memory_gb:>7.0f} "
            f"{str(spec.has_wgmma):>6} {str(spec.has_native_fp4):>4}"
        )


def _cmd_demo() -> None:
    from repro import BitDecodingConfig, get_arch
    from repro.core.attention import BitDecoding
    from repro.core.softmax import reference_attention

    rng = np.random.default_rng(0)
    engine = BitDecoding(BitDecodingConfig(bits=4), get_arch("a100"))
    k = rng.standard_normal((1, 2, 400, 64)).astype(np.float16)
    v = rng.standard_normal((1, 2, 400, 64)).astype(np.float16)
    cache = engine.prefill(k, v)
    q = rng.standard_normal((1, 1, 8, 64)).astype(np.float16)
    out = engine.decode(q, cache)
    ref = reference_attention(
        q[0, 0, 0:1].astype(np.float32), k[0, 0].astype(np.float32), v[0, 0].astype(np.float32)
    )
    print(f"cache: {cache.packed_len()} packed + {cache.res_len()} residual tokens")
    print(f"compression: {cache.compression_ratio():.2f}x")
    print(f"head-0 max error vs FP16: {np.abs(out[0, 0, 0] - ref[0]).max():.4f}")


def _cmd_sweep(arch: str) -> None:
    from repro import AttentionGeometry, BitDecodingConfig, get_arch
    from repro.baselines import FlashDecodingV2
    from repro.core.attention import BitDecoding
    from repro.core.arch_support import resolve_version

    spec = get_arch(arch)
    version = resolve_version(spec)
    config = (
        BitDecodingConfig(version="fp4")
        if version == "fp4"
        else BitDecodingConfig(bits=4, version=version)
    )
    engine = BitDecoding(config, spec)
    baseline = FlashDecodingV2(spec)
    print(f"{spec.name}: {engine.config.short_name} vs FP16 FlashDecoding-v2")
    for seq in (8192, 32768, 131072):
        geom = AttentionGeometry(1, 32, 8, seq, 128)
        ratio = baseline.decode_time_ms(geom) / engine.decode_time_ms(geom)
        print(f"  seq {seq:>7}: {ratio:.2f}x")


def _cmd_experiment(name: str) -> None:
    from repro.bench import figures

    lookup = {
        "fig4": figures.fig4_motivation,
        "fig8": figures.fig8_blackwell,
        "fig9": figures.fig9_hopper,
        "fig10": figures.fig10_rtx4090,
        "fig11": figures.fig11_a100,
        "fig12": figures.fig12_e2e_kivi,
        "fig13": figures.fig13_e2e_qserve,
        "fig14": figures.fig14_residual_overhead,
        "fig15": figures.fig15_dequant_overhead,
        "fig16": figures.fig16_breakdown,
        "table1": figures.table1_accuracy,
        "table2": figures.table2_quantpack,
        "table3": figures.table3_coop_softmax,
    }
    if name not in lookup:
        print(f"unknown experiment {name!r}; choose from {sorted(lookup)}")
        sys.exit(2)
    lookup[name]().show()


def _schedules_match(analytical, executed) -> bool:
    return (
        executed.executed_tokens == executed.total_generated_tokens
        and executed.total_generated_tokens == analytical.total_generated_tokens
        and executed.decode_steps == analytical.decode_steps
        and executed.prefill_steps == analytical.prefill_steps
        and executed.preemptions == analytical.preemptions
    )


def _decoded_maps_bit_exact(decoded_a, decoded_b) -> bool:
    """Two ``req_id -> [hidden states]`` maps, bit-compared."""
    if decoded_a.keys() != decoded_b.keys():
        return False
    for req_id, steps_a in decoded_a.items():
        steps_b = decoded_b[req_id]
        if len(steps_a) != len(steps_b):
            return False
        if any(not np.array_equal(a, b) for a, b in zip(steps_a, steps_b)):
            return False
    return True


def _decoded_bit_exact(runner_a, runner_b) -> bool:
    """Every request's per-step decode hidden states, bit-compared."""
    return _decoded_maps_bit_exact(runner_a.decoded, runner_b.decoded)


def _chaos_outputs_recovered(chaos_engine, free_engine) -> bool:
    """Chaos-run decode outputs vs the fault-free reference, bitwise.

    Every request the chaos run decoded must be a *prefix* of the
    fault-free run's outputs (timed-out requests stopped early), and a
    request the chaos run FINISHED must match in full — recovery by
    bit-exact replay means surviving faults costs time, never numerics.
    """
    chaos, free = chaos_engine._runner.decoded, free_engine._runner.decoded
    finished = {lc.request.req_id for lc in chaos_engine.lifecycles if lc.finished}
    for req_id, steps in chaos.items():
        reference = free.get(req_id)
        if reference is None or len(steps) > len(reference):
            return False
        if req_id in finished and len(steps) != len(reference):
            return False
        if any(not np.array_equal(a, b) for a, b in zip(steps, reference)):
            return False
    return True


def _chaos_schedules_match(analytical, executed) -> bool:
    """Fault outcomes, recovery actions and deadline decisions must land
    on the same steps in both modes — the PR 7 determinism contract
    extended to the whole degradation surface."""
    same_counts = all(
        getattr(analytical, f) == getattr(executed, f)
        for f in (
            "total_generated_tokens",
            "prefill_steps",
            "decode_steps",
            "mixed_steps",
            "preemptions",
            "swap_outs",
            "swap_ins",
            "transfer_retries",
            "lost_pages",
            "checksum_failures",
            "healed_pages",
            "healed_requests",
            "shed",
            "timed_out",
            "failed",
            "completed",
            "slow_steps",
        )
    )
    a, b = analytical.sim_time_s, executed.sim_time_s
    return same_counts and abs(a - b) <= 1e-9 + 1e-6 * max(abs(a), abs(b))


def _cmd_serve_sim_chaos(args, model, arch, trace) -> None:
    """Fault injection over the tiered stack, with recovery cross-checks.

    Arms the demo :class:`~repro.faults.plan.FaultSpec` (seeded by
    ``--chaos``) on a swap-tiered INT4 stack and runs the trace under an
    optional deadline policy.  Plain mode reports the analytical
    degradation counters.  With ``--execute`` it additionally proves the
    recovery machinery: the analytical and executed chaos schedules must
    agree on every fault outcome and recovery action, all lost/corrupt
    pages must have been healed with no request FAILED, the executed
    decode outputs must be bit-identical to a fault-free reference run
    wherever recovery succeeded, and the plan must actually have
    exercised a retry, a heal and (under a deadline) a shed.
    """
    import json

    from repro.attn import PagedBitBackend
    from repro.core.attention import BitDecoding
    from repro.core.config import BitDecodingConfig
    from repro.faults import demo_fault_spec
    from repro.model.memory import int_format
    from repro.serving import ContinuousBatchingEngine, DeadlinePolicy, EngineConfig

    if args.page_size is not None or args.residual_window is not None:
        print(
            "serve-sim: --chaos runs the INT4 paged stack at page size N_r; "
            "drop --page-size/--residual-window"
        )
        sys.exit(2)
    if args.pages is not None:
        print(
            "serve-sim: --chaos injects faults on tier transfer legs, so the "
            "pool is tiered; use --device-pages/--host-pages, not --pages"
        )
        sys.exit(2)
    if args.device_pages is None or args.host_pages is None:
        print(
            "serve-sim: --chaos needs the tier geometry: --device-pages and "
            "--host-pages (plus optional --disk-pages)"
        )
        sys.exit(2)
    if args.prefix_cache:
        print("serve-sim: --chaos does not compose with --prefix-cache yet")
        sys.exit(2)
    if args.execute and model.param_count > 1e6:
        print(
            f"serve-sim: --execute runs real numerics and {model.name} has "
            f"{model.param_count / 1e9:.1f}B parameters; use a toy model "
            "(e.g. --model tiny)"
        )
        sys.exit(2)
    kernel_config = BitDecodingConfig(bits=4, wn=1)
    kernel = BitDecoding(kernel_config, arch)
    nr = kernel_config.residual_block_size
    worst = max(trace, key=lambda r: r.total_len, default=None)
    if worst is not None and -(-worst.total_len // nr) > args.device_pages:
        need = -(-worst.total_len // nr)
        print(
            f"serve-sim: request {worst.req_id} needs {need} device pages for "
            f"its {worst.total_len}-token context but the device tier holds "
            f"only {args.device_pages}; raise --device-pages to at least {need}"
        )
        sys.exit(2)
    deadline_ms = args.deadline_ms
    if deadline_ms is None and args.execute:
        deadline_ms = 6.0  # the committed demo plan's shed pressure
    spec = demo_fault_spec(args.chaos)
    common = dict(
        model=model,
        arch=arch,
        fmt=int_format(4, model, residual_window=nr),
        page_size=nr,
        max_batch=args.max_batch,
        n_gpus=args.n_gpus,
        max_steps=args.steps,
        prefill_chunk_tokens=args.prefill_chunk,
        preemption="swap",
        device_pages=args.device_pages,
        host_pages=args.host_pages,
        disk_pages=args.disk_pages,
    )
    chaos = dict(
        faults=spec,
        audit_every=args.audit_every,
        max_heals=args.max_heals,
        deadline_policy=(
            DeadlinePolicy(default_deadline_s=deadline_ms * 1e-3) if deadline_ms else None
        ),
    )
    analytical = ContinuousBatchingEngine(
        EngineConfig(attention=kernel, **chaos, **common), trace
    ).run()
    reports = {"analytical": analytical.to_dict()}
    checks = {}
    if args.execute:
        execute = dict(execute=True, execute_seed=args.seed)
        chaos_engine = ContinuousBatchingEngine(
            EngineConfig(backend=PagedBitBackend(kernel), **execute, **chaos, **common),
            trace,
        )
        executed = chaos_engine.run()
        free_engine = ContinuousBatchingEngine(
            EngineConfig(backend=PagedBitBackend(kernel), **execute, **common), trace
        )
        fault_free = free_engine.run()
        checks["schedule_match"] = _chaos_schedules_match(analytical, executed)
        checks["all_damage_healed"] = (
            executed.failed == 0 and not chaos_engine.tiers.has_bad_pages
        )
        checks["outputs_bit_exact_after_recovery"] = _chaos_outputs_recovered(
            chaos_engine, free_engine
        )
        checks["exercised_retry"] = executed.transfer_retries >= 1
        checks["exercised_heal"] = executed.healed_pages >= 1
        if deadline_ms:
            checks["exercised_shed"] = executed.shed >= 1
        reports["executed"] = executed.to_dict()
        reports["fault_free"] = fault_free.to_dict()
    report = executed if args.execute else analytical
    ok = all(checks.values())
    if args.json:
        print(
            json.dumps(
                {
                    "model": model.name,
                    "arch": arch.name,
                    "mode": "chaos-execute" if args.execute else "chaos",
                    "chaos_seed": args.chaos,
                    "deadline_ms": deadline_ms,
                    "audit_every": args.audit_every,
                    "checks": checks,
                    "reports": reports,
                },
                indent=2,
            )
        )
    else:
        pool = (
            f"device {args.device_pages} + host {args.host_pages}"
            + (f" + disk {args.disk_pages}" if args.disk_pages else "")
        )
        print(
            f"serve-sim --chaos {args.chaos}: {model.name} on {arch.name} | "
            f"INT4 paged-bit, {pool} pages, swap preemption"
            + (f", deadline {deadline_ms:g} ms" if deadline_ms else ", best-effort")
            + (", executed" if args.execute else ", analytical")
        )
        print(
            f"  outcome: {report.completed} finished ({report.deadline_met} in "
            f"deadline), {report.shed} shed, {report.timed_out} timed out, "
            f"{report.failed} failed of {report.n_requests}"
        )
        print(
            f"  faults: {report.transfer_retries} retries "
            f"({report.retry_backoff_s * 1e3:.3f} ms backoff), "
            f"{report.lost_pages} lost pages, {report.checksum_failures} "
            f"checksum failures, {report.slow_steps} slow steps"
        )
        print(
            f"  recovery: {report.healed_pages} pages healed via "
            f"{report.healed_requests} request replays, {report.audits} audits clean"
        )
        print(
            f"  goodput: {report.goodput_tokens_per_s:.1f} tok/s in-deadline vs "
            f"{report.sustained_tokens_per_s:.1f} tok/s generated"
        )
        for name, value in checks.items():
            print(f"  check {name}: {value}")
    if not ok:
        sys.exit(1)


def _cmd_serve_sim_execute(args, model, arch, trace) -> None:
    """Real-token execution: schedule with the same clock, run the numerics.

    Runs the trace twice over an identical INT4 stack — once purely
    analytical, once with ``execute=True`` so every scheduler step pushes
    real tokens through TinyTransformer + the paged low-bit cache sharing
    the engine's page table — and checks the schedules agree token for
    token.  With ``--prefix-cache`` two more executed runs pin down the
    sharing machinery: a ``prefix_share=False`` run (hits copied into
    private pages) must decode bit-identical hidden states, and a
    cache-off run must be strictly slower on a shared-prefix trace.
    """
    import json

    from repro.attn import PagedBitBackend
    from repro.core.attention import BitDecoding
    from repro.core.config import BitDecodingConfig
    from repro.model.memory import int_format
    from repro.serving import ContinuousBatchingEngine, EngineConfig

    # wn=1 keeps N_r (= page size in execute mode) small enough for short
    # CI-sized prompts to span several pages.
    if args.page_size is not None or args.residual_window is not None:
        print(
            "serve-sim: --execute derives --page-size and --residual-window "
            "from the kernel's residual block size N_r; drop those flags"
        )
        sys.exit(2)
    # The runner allocates the model's weights for real; a serving-scale
    # LLM would be tens of GB of float32 before the first step runs.
    if model.param_count > 1e6:
        print(
            f"serve-sim: --execute runs real numerics and {model.name} has "
            f"{model.param_count / 1e9:.1f}B parameters; use a toy model "
            "(e.g. --model tiny)"
        )
        sys.exit(2)
    kernel_config = BitDecodingConfig(bits=4, wn=1)
    kernel = BitDecoding(kernel_config, arch)
    nr = kernel_config.residual_block_size
    fmt = int_format(4, model, residual_window=nr)
    swap = args.preemption == "swap"
    if swap and args.pages is not None:
        print(
            "serve-sim: --preemption swap sizes the pool from the tier "
            "geometry; use --device-pages/--host-pages, not --pages"
        )
        sys.exit(2)
    if swap and (args.device_pages is None or args.host_pages is None):
        print(
            "serve-sim: --preemption swap needs --device-pages and "
            "--host-pages (the pool is their sum plus --disk-pages)"
        )
        sys.exit(2)
    n_pages = 96 if args.pages is None else args.pages
    # A request whose own context outgrows the tier every decode step must
    # fit in could never finish even with the pool to itself; the engine
    # would silently reject it, which reads as a mystery shortfall in the
    # completion counts.  Fail fast with the fix spelled out instead.
    fit_pages = args.device_pages if swap else n_pages
    worst = max(trace, key=lambda r: r.total_len, default=None)
    if worst is not None and -(-worst.total_len // nr) > fit_pages:
        need = -(-worst.total_len // nr)
        tier = "device tier" if swap else "page pool"
        fix = (
            f"raise --device-pages to at least {need}"
            if swap
            else f"raise --pages to at least {need}, or offload with "
            f"--preemption swap --device-pages {need} --host-pages {need}"
        )
        print(
            f"serve-sim: request {worst.req_id} needs {need} pages for its "
            f"{worst.total_len}-token context (prompt + output) but the "
            f"{tier} holds only {fit_pages}; it can never complete, even "
            f"alone — {fix}"
        )
        sys.exit(2)
    common = dict(
        model=model,
        arch=arch,
        fmt=fmt,
        page_size=nr,
        max_batch=args.max_batch,
        n_gpus=args.n_gpus,
        max_steps=args.steps,
        prefill_chunk_tokens=args.prefill_chunk,
        prefix_cache=args.prefix_cache,
    )
    if swap:
        common.update(
            preemption="swap",
            device_pages=args.device_pages,
            host_pages=args.host_pages,
            disk_pages=args.disk_pages,
        )
    else:
        common["n_pages"] = n_pages
    execute = dict(execute=True, execute_seed=args.seed)
    analytical = ContinuousBatchingEngine(EngineConfig(attention=kernel, **common), trace).run()
    executed_engine = ContinuousBatchingEngine(
        EngineConfig(backend=PagedBitBackend(kernel), **execute, **common), trace
    )
    executed = executed_engine.run()
    checks = {"schedule_match": _schedules_match(analytical, executed)}
    reports = {"analytical": analytical.to_dict(), "executed": executed.to_dict()}
    if swap:
        # Two recompute references bracket the swap run: an *unpressured*
        # pool of the same total page count proves swapped-and-restored
        # decode is bit-identical to never-swapped decode, and a pool of
        # just the device tier shows what the same device budget costs
        # when pressure is paid in recomputation instead of PCIe traffic.
        untiered = {
            k: v
            for k, v in common.items()
            if k not in ("preemption", "device_pages", "host_pages", "disk_pages")
        }
        total_pages = args.device_pages + args.host_pages + args.disk_pages
        baseline_engine = ContinuousBatchingEngine(
            EngineConfig(
                backend=PagedBitBackend(kernel),
                **execute,
                **{**untiered, "n_pages": total_pages},
            ),
            trace,
        )
        baseline = baseline_engine.run()
        pressured = ContinuousBatchingEngine(
            EngineConfig(
                backend=PagedBitBackend(kernel),
                **execute,
                **{**untiered, "n_pages": args.device_pages},
            ),
            trace,
        ).run()
        checks["all_completed"] = executed.completed == len(trace)
        checks["swap_vs_unpressured_bit_exact"] = _decoded_bit_exact(
            executed_engine._runner, baseline_engine._runner
        )
        if executed.swap_outs:
            checks["swap_faster_than_recompute"] = (
                executed.sustained_tokens_per_s > pressured.sustained_tokens_per_s
            )
        reports["recompute_unpressured"] = baseline.to_dict()
        reports["recompute_pressured"] = pressured.to_dict()
    if args.prefix_cache:
        copied_engine = ContinuousBatchingEngine(
            EngineConfig(
                backend=PagedBitBackend(kernel),
                **execute,
                **{**common, "prefix_share": False},
            ),
            trace,
        )
        copied = copied_engine.run()
        off = ContinuousBatchingEngine(
            EngineConfig(
                backend=PagedBitBackend(kernel),
                **execute,
                **{**common, "prefix_cache": False},
            ),
            trace,
        ).run()
        checks["share_vs_copy_schedule_match"] = (
            copied.sim_time_s == executed.sim_time_s
            and copied.prefix_hit_tokens == executed.prefix_hit_tokens
            and copied.total_generated_tokens == executed.total_generated_tokens
        )
        checks["share_vs_copy_bit_exact"] = _decoded_bit_exact(
            executed_engine._runner, copied_engine._runner
        )
        if args.shared_prefix > 0:
            checks["hit_rate_positive"] = executed.prefix_hit_rate > 0
            checks["faster_than_cache_off"] = (
                executed.sustained_tokens_per_s > off.sustained_tokens_per_s
            )
            checks["more_effective_capacity"] = (
                executed.effective_capacity_pages > off.effective_capacity_pages
            )
        reports["executed_copy"] = copied.to_dict()
        reports["cache_off"] = off.to_dict()
    match = all(checks.values())
    if args.json:
        print(json.dumps({
            "model": model.name,
            "arch": arch.name,
            "mode": "execute",
            "page_size": nr,
            "prefix_cache": args.prefix_cache,
            "schedule_match": checks["schedule_match"],
            "checks": checks,
            "reports": reports,
        }, indent=2))
    else:
        pool = (
            f"device {args.device_pages} + host {args.host_pages}"
            + (f" + disk {args.disk_pages}" if args.disk_pages else "")
            + " pages, swap preemption"
            if swap
            else f"{n_pages} pages"
        )
        print(
            f"serve-sim --execute: {model.name} on {arch.name} | INT4 paged-bit, "
            f"page {nr} tok (= N_r), {pool}"
            + (", prefix cache on" if args.prefix_cache else "")
        )
        for label, r in (("analytical", analytical), ("executed", executed)):
            ran = "-" if r.executed_tokens is None else str(r.executed_tokens)
            print(
                f"  {label:<10} generated {r.total_generated_tokens:>5} tok "
                f"(ran {ran:>5}), decode steps {r.decode_steps}, "
                f"preemptions {r.preemptions}, done {r.completed}"
            )
        if swap:
            print(
                f"  offload: swap-outs {executed.swap_outs}, "
                f"swap-ins {executed.swap_ins}, faults {executed.offload_faults}, "
                f"stall {executed.offload_stall_s * 1e3:.2f} ms, "
                f"d2h {executed.offload_d2h_bytes} B, h2d {executed.offload_h2d_bytes} B"
            )
            print(
                f"  throughput: swap {executed.sustained_tokens_per_s:.1f} tok/s vs "
                f"recompute@device {pressured.sustained_tokens_per_s:.1f} tok/s vs "
                f"unpressured {baseline.sustained_tokens_per_s:.1f} tok/s"
            )
        if args.prefix_cache:
            print(
                f"  prefix cache: hit rate {executed.prefix_hit_rate:.3f} "
                f"({executed.prefix_hit_tokens}/{executed.prefix_probe_tokens} tok), "
                f"shared pages peak {executed.shared_pages_peak}, "
                f"effective capacity {executed.effective_capacity_pages} pages"
            )
        if swap or args.prefix_cache:
            for name, ok in checks.items():
                print(f"  check {name}: {ok}")
        else:
            print(f"token counts match the analytical schedule: {match}")
    if not match:
        sys.exit(1)


def _cmd_serve_sim_cluster(args, model, arch, trace) -> None:
    """Cluster serving: TP-sharded engines behind a data-parallel router.

    ``--tp N`` head-shards each engine's page pool across N tensor-parallel
    ranks (pricing pays one rank's attention plus the all-reduce tax;
    ``--execute`` runs rank-local decode through
    :class:`~repro.cluster.sharding.ShardedPagedBackend` and concatenates
    head outputs).  ``--replicas M`` fronts M independent engines with a
    :class:`~repro.cluster.router.Router` dispatching by ``--router``
    policy.  Under ``--execute`` the run is cross-checked hard: every
    request must complete exactly once across replicas, each replica's
    decoded streams must be bit-identical to a single-rank (tp=1) rerun
    of its dispatched subset, and — without ``--prefix-cache``, whose hit
    pattern legitimately depends on request co-location — the merged
    cluster outputs must be bit-identical to one single-rank,
    single-replica engine running the whole trace.
    """
    import json

    from repro.attn import PagedBitBackend
    from repro.cluster import Router, ShardedPagedBackend
    from repro.core.attention import BitDecoding
    from repro.core.config import BitDecodingConfig
    from repro.model.inference import decode_step_breakdown
    from repro.model.memory import int_format
    from repro.serving import ContinuousBatchingEngine, EngineConfig

    tp, replicas = args.tp, args.replicas
    if args.chaos is not None:
        print("serve-sim: --chaos does not compose with --tp/--replicas yet")
        sys.exit(2)
    if (
        args.preemption != "recompute"
        or args.device_pages is not None
        or args.host_pages is not None
        or args.disk_pages
    ):
        print(
            "serve-sim: --preemption swap and the tier sizes do not compose "
            "with --tp/--replicas yet; use recompute preemption"
        )
        sys.exit(2)
    if args.n_gpus not in (1, tp):
        print(
            f"serve-sim: --tp {tp} spans one replica's GPUs, so --n-gpus must "
            f"equal the tp degree (or be left at its default 1); got "
            f"--n-gpus {args.n_gpus}"
        )
        sys.exit(2)
    kernel_config = BitDecodingConfig(bits=4, wn=1)
    kernel = BitDecoding(kernel_config, arch)
    nr = kernel_config.residual_block_size
    if args.execute:
        if args.page_size is not None or args.residual_window is not None:
            print(
                "serve-sim: --execute derives --page-size and "
                "--residual-window from the kernel's residual block size "
                "N_r; drop those flags"
            )
            sys.exit(2)
        if model.param_count > 1e6:
            print(
                f"serve-sim: --execute runs real numerics and {model.name} "
                f"has {model.param_count / 1e9:.1f}B parameters; use a toy "
                "model (e.g. --model tiny)"
            )
            sys.exit(2)
        page_size = nr
        n_pages = 96 if args.pages is None else args.pages
        worst = max(trace, key=lambda r: r.total_len, default=None)
        if worst is not None and -(-worst.total_len // nr) > n_pages:
            need = -(-worst.total_len // nr)
            print(
                f"serve-sim: request {worst.req_id} needs {need} pages for "
                f"its {worst.total_len}-token context but the page pool "
                f"holds only {n_pages}; raise --pages to at least {need}"
            )
            sys.exit(2)
        residual_window = nr
    else:
        if args.pages is not None:
            print("serve-sim: --pages only applies to --execute runs")
            sys.exit(2)
        page_size = 64 if args.page_size is None else args.page_size
        n_pages = None
        residual_window = 64 if args.residual_window is None else args.residual_window
    common = dict(
        model=model,
        arch=arch,
        fmt=int_format(4, model, residual_window=residual_window),
        page_size=page_size,
        n_pages=n_pages,
        max_batch=args.max_batch,
        n_gpus=tp,
        tp=tp,
        max_steps=args.steps,
        prefill_chunk_tokens=args.prefill_chunk,
        prefix_cache=args.prefix_cache,
    )
    if args.execute:
        backend = (
            ShardedPagedBackend(kernel, tp=tp) if tp > 1 else PagedBitBackend(kernel)
        )
        config = EngineConfig(
            backend=backend, execute=True, execute_seed=args.seed, **common
        )
    else:
        config = EngineConfig(attention=kernel, **common)
    router = Router(config, trace, replicas=replicas, policy=args.router)
    cluster = router.run()

    checks = {}
    if args.execute:
        handled = sorted(
            lc.request.req_id for engine in router.engines for lc in engine.lifecycles
        )
        finished = [
            lc.request.req_id
            for engine in router.engines
            for lc in engine.lifecycles
            if lc.finished
        ]
        checks["exactly_once_across_replicas"] = (
            handled == sorted(r.req_id for r in trace)
            and len(finished) == len(set(finished)) == len(trace)
        )
        # Single-rank references: rerun each replica's dispatched subset on
        # a tp=1 engine of the same config.  The schedule may differ (tp
        # pricing moves the clock) but decode numerics are schedule-
        # independent, so the streams must match bit for bit.
        single = {**common, "n_gpus": 1, "tp": 1}
        bit_exact = True
        for engine in router.engines:
            subset = [lc.request for lc in engine.lifecycles]
            reference = ContinuousBatchingEngine(
                EngineConfig(
                    backend=PagedBitBackend(kernel),
                    execute=True,
                    execute_seed=args.seed,
                    **single,
                ),
                subset,
            )
            reference.run()
            if not _decoded_bit_exact(engine._runner, reference._runner):
                bit_exact = False
        checks["tp_decode_bit_exact_vs_single_rank"] = bit_exact
        if not args.prefix_cache:
            whole = ContinuousBatchingEngine(
                EngineConfig(
                    backend=PagedBitBackend(kernel),
                    execute=True,
                    execute_seed=args.seed,
                    **single,
                ),
                trace,
            )
            whole.run()
            merged = {}
            for engine in router.engines:
                merged.update(engine._runner.decoded)
            checks["cluster_bit_exact_vs_single_engine"] = _decoded_maps_bit_exact(
                merged, whole._runner.decoded
            )
    ok = all(checks.values())

    peak = max((r.peak_resident_batch for r in cluster.per_replica), default=0) or 1
    seq = max((r.total_len for r in trace), default=1)
    sharded = decode_step_breakdown(model, arch, kernel, peak, seq, n_gpus=tp, tp=tp)
    full = decode_step_breakdown(model, arch, kernel, peak, seq)
    if args.json:
        print(
            json.dumps(
                {
                    "model": model.name,
                    "arch": arch.name,
                    "mode": "cluster-execute" if args.execute else "cluster",
                    "tp": tp,
                    "replicas": replicas,
                    "router": args.router,
                    "allreduce_tax_ms": sharded.comm_ms,
                    "rank_attention_ms": sharded.attention_ms,
                    "full_attention_ms": full.attention_ms,
                    "checks": checks,
                    "cluster": cluster.to_dict(),
                },
                indent=2,
            )
        )
    else:
        print(
            f"serve-sim cluster: {model.name} on {arch.name} | INT4, "
            f"tp {tp} x {replicas} replica{'s' if replicas != 1 else ''}, "
            f"router {args.router}"
            + (", prefix cache on" if args.prefix_cache else "")
            + (", executed" if args.execute else ", analytical")
        )
        print(
            f"  aggregate: {cluster.completed} done of {cluster.n_requests}, "
            f"{cluster.sustained_tokens_per_s:.1f} tok/s "
            f"(goodput {cluster.goodput_tokens_per_s:.1f}), "
            f"p99 ttft {cluster.p99_ttft_s if cluster.p99_ttft_s is None else round(cluster.p99_ttft_s, 4)} s, "
            f"p99 tbt {cluster.p99_tbt_s if cluster.p99_tbt_s is None else round(cluster.p99_tbt_s * 1e3, 3)} ms"
        )
        print(
            f"  routing: dispatch {cluster.dispatch_counts}, "
            f"imbalance {cluster.load_imbalance:.2f}, prefix groups "
            f"{cluster.prefix_groups_seen} ({cluster.prefix_groups_split} split), "
            f"cross-replica prefix misses {cluster.cross_replica_prefix_misses}"
        )
        if tp > 1:
            print(
                f"  tp pricing: all-reduce tax {sharded.comm_ms:.4f} ms/step, "
                f"rank attention {sharded.attention_ms:.4f} ms vs full "
                f"{full.attention_ms:.4f} ms (batch {peak}, seq {seq})"
            )
        for i, r in enumerate(cluster.per_replica):
            print(
                f"  replica {i}: {cluster.dispatch_counts[i]} requests, "
                f"done {r.completed}, {r.sustained_tokens_per_s:.1f} tok/s, "
                f"preemptions {r.preemptions}"
                + (f", prefix hit rate {r.prefix_hit_rate:.3f}" if args.prefix_cache else "")
            )
        for name, value in checks.items():
            print(f"  check {name}: {value}")
    if not ok:
        sys.exit(1)


def _cmd_serve_sim(args) -> None:
    import json

    from repro.gpu.arch import get_arch
    from repro.model.config import get_model
    from repro.model.serving import ServingOOMError
    from repro.serving import compare_formats, paper_serving_stacks, poisson_trace

    try:
        model = get_model(args.model)
        arch = get_arch(args.arch)
        trace = poisson_trace(
            args.requests,
            args.rate,
            args.prompt_len,
            args.output_len,
            seed=args.seed,
            prompt_jitter=args.prompt_jitter,
            output_jitter=args.output_jitter,
            shared_prefix_fraction=args.shared_prefix,
            prefix_groups=args.prefix_groups,
        )
        if args.chaos is None and (
            args.deadline_ms is not None or args.audit_every != 10 or args.max_heals != 5
        ):
            print(
                "serve-sim: --deadline-ms, --audit-every and --max-heals only "
                "apply to --chaos runs"
            )
            sys.exit(2)
        if args.tp < 1 or args.replicas < 1:
            print(
                f"serve-sim: --tp and --replicas must be >= 1 "
                f"(got tp={args.tp}, replicas={args.replicas})"
            )
            sys.exit(2)
        if args.replicas == 1 and args.router != "round_robin":
            print(
                f"serve-sim: --router {args.router} routes across replicas; "
                "pass --replicas > 1 (or drop --router)"
            )
            sys.exit(2)
        if args.tp > 1 or args.replicas > 1:
            _cmd_serve_sim_cluster(args, model, arch, trace)
            return
        if args.chaos is not None:
            _cmd_serve_sim_chaos(args, model, arch, trace)
            return
        if args.execute:
            _cmd_serve_sim_execute(args, model, arch, trace)
            return
        if args.pages is not None:
            print("serve-sim: --pages only applies to --execute runs")
            sys.exit(2)
        if (
            args.preemption != "recompute"
            or args.device_pages is not None
            or args.host_pages is not None
            or args.disk_pages
        ):
            print(
                "serve-sim: --preemption swap and the tier sizes only apply "
                "to --execute runs"
            )
            sys.exit(2)
        page_size = 64 if args.page_size is None else args.page_size
        residual_window = 64 if args.residual_window is None else args.residual_window
        stacks = paper_serving_stacks(model, arch, residual_window=residual_window)
        reports = compare_formats(
            model,
            arch,
            stacks,
            trace,
            page_size=page_size,
            max_batch=args.max_batch,
            n_gpus=args.n_gpus,
            max_steps=args.steps,
            prefill_chunk_tokens=args.prefill_chunk,
            prefix_cache=args.prefix_cache,
        )
    except (KeyError, ValueError, ServingOOMError) as err:
        message = err.args[0] if err.args else err
        print(f"serve-sim: {message}")
        sys.exit(2)
    if args.json:
        print(json.dumps({
            "model": model.name,
            "arch": arch.name,
            "requests": args.requests,
            "rate_rps": args.rate,
            "seed": args.seed,
            "prefill_chunk_tokens": args.prefill_chunk,
            "reports": [r.to_dict() for r in reports],
        }, indent=2))
        return

    def fmt_s(value, width=10) -> str:
        return f"{value:{width}.2f}" if value is not None else f"{'-':>{width}}"

    def fmt_ms(value, width=9) -> str:
        return f"{value * 1e3:{width}.1f}" if value is not None else f"{'-':>{width}}"

    print(
        f"serve-sim: {model.name} on {arch.name} | {args.requests} requests, "
        f"Poisson {args.rate:.1f} req/s, seed {args.seed}"
    )
    print(
        f"prompt {args.prompt_len} tok, output {args.output_len} tok, "
        f"page {page_size} tok, max batch {args.max_batch}"
        + (f", step cap {args.steps}" if args.steps else "")
        + (
            f", chunked prefill {args.prefill_chunk} tok/step"
            if args.prefill_chunk
            else ", whole-prompt prefill"
        )
        + (
            f", prefix cache on ({args.shared_prefix:.0%} shared, "
            f"{args.prefix_groups} group{'s' if args.prefix_groups != 1 else ''})"
            if args.prefix_cache
            else ""
        )
    )
    header = (
        f"{'format':<6} {'pages':>7} {'peak':>5} {'preempt':>8} {'done':>5} "
        f"{'tok/s':>9} {'p50 ttft s':>10} {'p99 ttft s':>10} "
        f"{'p99 tbt ms':>10} {'p99 lat s':>10}"
    )
    if args.prefix_cache:
        header += f" {'hit %':>6} {'eff cap':>8}"
    print()
    print(header)
    print("-" * len(header))
    for r in reports:
        row = (
            f"{r.format_name:<6} {r.n_pages:>7} {r.peak_resident_batch:>5} "
            f"{r.preemptions:>8} {r.completed:>5} {r.sustained_tokens_per_s:>9.1f} "
            f"{fmt_s(r.p50_ttft_s)} {fmt_s(r.p99_ttft_s)} "
            f"{fmt_ms(r.p99_tbt_s, 10)} {fmt_s(r.p99_latency_s)}"
        )
        if args.prefix_cache:
            row += f" {r.prefix_hit_rate * 100:>6.1f} {r.effective_capacity_pages:>8}"
        print(row)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("devices")
    sub.add_parser("demo")
    sweep = sub.add_parser("sweep")
    sweep.add_argument("--arch", default="a100")
    experiment = sub.add_parser("experiment")
    experiment.add_argument("name")
    serve = sub.add_parser(
        "serve-sim",
        help="continuous-batching simulation: FP16 vs INT4 vs INT2 serving",
    )
    serve.add_argument("--model", default="llama-3.1-8b")
    serve.add_argument("--arch", default="a100")
    serve.add_argument("--requests", type=int, default=96)
    serve.add_argument("--rate", type=float, default=32.0, help="Poisson req/s")
    serve.add_argument("--prompt-len", type=int, default=8192)
    serve.add_argument("--output-len", type=int, default=256)
    serve.add_argument("--prompt-jitter", type=float, default=0.0)
    serve.add_argument("--output-jitter", type=float, default=0.0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--page-size",
        type=int,
        default=None,
        help="pool page size in tokens (default 64; incompatible with "
        "--execute, which uses N_r)",
    )
    serve.add_argument("--max-batch", type=int, default=384)
    serve.add_argument(
        "--residual-window",
        type=int,
        default=None,
        help="FP16 residual window tokens per sequence (default 64; "
        "incompatible with --execute, which uses N_r)",
    )
    serve.add_argument("--n-gpus", type=int, default=1)
    serve.add_argument(
        "--tp",
        type=int,
        default=1,
        help="tensor-parallel degree per engine: the KV-head space is "
        "sharded across tp ranks behind shared block tables (must divide "
        "the model's KV-head count; pricing pays one rank's attention "
        "plus the all-reduce tax, --execute cross-checks rank-local "
        "decode bit-exactly against a single-rank run)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="data-parallel engine replicas behind the request router",
    )
    serve.add_argument(
        "--router",
        choices=("round_robin", "least_loaded", "prefix_affinity"),
        default="round_robin",
        help="dispatch policy across --replicas engines: round_robin, "
        "least_loaded (fewest in-flight requests), or prefix_affinity "
        "(shared-prefix groups land on the replica whose prefix cache "
        "already holds their pages)",
    )
    serve.add_argument("--steps", type=int, default=None, help="scheduler step cap")
    serve.add_argument(
        "--prefill-chunk",
        type=int,
        default=None,
        help="chunked-prefill token budget per step (None = whole-prompt prefill)",
    )
    serve.add_argument(
        "--execute",
        action="store_true",
        help="run real tokens through TinyTransformer + the paged low-bit "
        "cache (use a tiny model, e.g. --model tiny)",
    )
    serve.add_argument(
        "--pages",
        type=int,
        default=None,
        help="page-pool size for --execute runs (pages of N_r tokens; default 96)",
    )
    serve.add_argument(
        "--preemption",
        choices=("recompute", "swap"),
        default="recompute",
        help="page-pressure discipline for --execute runs: recompute "
        "releases the victim's pages and replays its prefill; swap demotes "
        "them to the host tier and promotes them back bit-exactly (also "
        "cross-checks against recompute runs at the total and device-only "
        "page budgets)",
    )
    serve.add_argument(
        "--device-pages",
        type=int,
        default=None,
        help="device-tier frames under --preemption swap (the decode "
        "working set must fit here at once)",
    )
    serve.add_argument(
        "--host-pages",
        type=int,
        default=None,
        help="host-tier frames backing the device tier under --preemption swap",
    )
    serve.add_argument(
        "--disk-pages",
        type=int,
        default=0,
        help="modeled NVMe frames behind the host tier (default 0)",
    )
    serve.add_argument(
        "--prefix-cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="probe a radix-style prefix cache at admission and share hit "
        "pages copy-on-write (with --execute, also cross-checks sharing "
        "against a page-copying run and a cache-off run)",
    )
    serve.add_argument(
        "--shared-prefix",
        type=float,
        default=0.0,
        help="fraction of every prompt that is a common prefix within its "
        "prefix group (what the cache can hit; default 0.0)",
    )
    serve.add_argument(
        "--prefix-groups",
        type=int,
        default=1,
        help="number of disjoint shared-prefix families in the trace",
    )
    serve.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="arm the demo fault plan seeded here (transfer retries, lost "
        "pages, corruption, latency spikes, slow steps) over a swap-tiered "
        "INT4 stack; with --execute also proves recovery: schedule parity, "
        "all damage healed, outputs bit-identical to a fault-free run",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request completion deadline for --chaos runs (shed + "
        "timeout + goodput; --execute defaults to the committed demo's 6 ms)",
    )
    serve.add_argument(
        "--audit-every",
        type=int,
        default=10,
        help="invariant-audit cadence in scheduler steps for --chaos runs",
    )
    serve.add_argument(
        "--max-heals",
        type=int,
        default=5,
        help="replay budget per request for --chaos runs; a sequence the "
        "plan keeps damaging past this many heals ends FAILED",
    )
    serve.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.command == "devices":
        _cmd_devices()
    elif args.command == "demo":
        _cmd_demo()
    elif args.command == "sweep":
        _cmd_sweep(args.arch)
    elif args.command == "experiment":
        _cmd_experiment(args.name)
    elif args.command == "serve-sim":
        _cmd_serve_sim(args)


if __name__ == "__main__":
    main()
